// Seq2Seq transformer decoder (paper Table 3, Fig. 9).
//
// The forward pass is exposed at two levels:
//
//  * step(): one decoder forward step over a *step batch* — any number of
//    independent sequences, each at its own decode position, each reading
//    and writing K/V through an externally owned KvCacheView. This is the
//    primitive the generation-serving subsystem (src/genserve) fuses
//    iteration-level batches with: sequences join and leave the batch
//    between steps without touching each other's caches.
//
//  * decode(): whole-sentence beam search built on step(), preserved for
//    the Fig. 9 / Table 3 workload (beam_size >= 1; 1 = greedy). Each step
//    runs the beam through num_layers decoder layers (cached causal
//    self-attention + cross-attention over the encoder memory +
//    feed-forward), projects to the vocabulary and expands the beam.
//    Cross-attention K/V are projected once per sentence.
#pragma once

#include <memory>
#include <vector>

#include "kernels/paged_attention.h"
#include "model/weights.h"
#include "tensor/tensor.h"

namespace turbo::model {

struct Hypothesis {
  std::vector<int> tokens;  // includes BOS, excludes EOS
  double log_prob = 0.0;
};

// One contiguous extent of K/V rows (paged attention) — the currency
// between caches and the span kernels; see kernels/paged_attention.h.
using KvSpan = kernels::KvSpan;

// Per-sequence decode state owned outside the decoder. Rows are contiguous
// [heads * head_dim] strips; storage across tokens may be non-contiguous
// (e.g. pool blocks in genserve::KvCachePool). The decoder writes token t's
// self K/V during the step with index t and reads rows [0, t]; cross rows
// are written once by init_cross_attention and read every step.
class KvCacheView {
 public:
  virtual ~KvCacheView() = default;

  // Source-sentence length this cache's cross-attention K/V covers.
  virtual int src_len() const = 0;

  // [heads * head_dim] row for self-attention K/V of target token t.
  virtual float* self_k(int layer, int t) = 0;
  virtual float* self_v(int layer, int t) = 0;

  // [heads * head_dim] row for cross-attention K/V of source position s.
  virtual float* cross_k(int layer, int s) = 0;
  virtual float* cross_v(int layer, int s) = 0;

  // Block-extent iteration (paged attention): overwrite `out` with
  // contiguous spans covering self token rows [0, count) — respectively
  // cross rows [0, src_len()) — in position order. Returning false means
  // the cache does not expose extents and the decoder falls back to
  // per-row self_k/self_v gathers; that is the base-class default, so any
  // external KvCacheView keeps working unchanged. Implementations must
  // only report rows that are already materialized (for pool caches,
  // ensure_token up to count - 1 must have run).
  virtual bool self_extents(int layer, int count, std::vector<KvSpan>& out);
  virtual bool cross_extents(int layer, std::vector<KvSpan>& out);
};

// Simple contiguous KvCacheView for one sequence: the reference cache
// implementation, used by decode()'s beam search. Copies share the
// cross-attention K/V (immutable after init_cross_attention) and deep-copy
// the self caches, which is exactly what beam reordering needs. Being fully
// contiguous, its extents are a single span per layer.
class DenseKvCache final : public KvCacheView {
 public:
  DenseKvCache(const ModelConfig& config, int max_len, int s_src);

  int src_len() const override { return s_src_; }
  float* self_k(int layer, int t) override;
  float* self_v(int layer, int t) override;
  float* cross_k(int layer, int s) override;
  float* cross_v(int layer, int s) override;
  bool self_extents(int layer, int count, std::vector<KvSpan>& out) override;
  bool cross_extents(int layer, std::vector<KvSpan>& out) override;

 private:
  struct CrossKv {
    std::vector<std::vector<float>> k, v;  // [L][s_src * H]
  };

  int hidden_ = 0;
  int max_len_ = 0;
  int s_src_ = 0;
  std::vector<std::vector<float>> self_k_, self_v_;  // [L][max_len * H]
  std::shared_ptr<CrossKv> cross_;
};

// Per-beam cache allocation strategy for decode(). Beam search needs three
// cache operations: create the root, fork a surviving hypothesis's cache
// when the beam reorders, and prepare a cache for the step that writes self
// row t. The default (dense) factory deep-copies DenseKvCache on fork;
// genserve::PooledBeamKv instead forks refcounted pool blocks and uses
// prepare_token as the copy-on-write barrier, so beams share their common
// history physically. Both produce bit-identical decode results — the
// factory only changes where K/V rows live, never their values.
class BeamKvFactory {
 public:
  virtual ~BeamKvFactory() = default;
  virtual std::unique_ptr<KvCacheView> create(int s_src, int max_len) = 0;
  virtual std::unique_ptr<KvCacheView> fork(KvCacheView& parent) = 0;
  // Called before the decode step that writes self row t of `cache`.
  virtual void prepare_token(KvCacheView& cache, int t);
};

// Reusable scratch for step(): callers on the serving hot path keep one
// across calls so per-token work allocates nothing after warm-up.
struct DecodeWorkspace {
  std::vector<float> x, qkv, attn, proj, resid, inter, scores;
  std::vector<float> xg, lg;  // gathered hidden rows / compact logits
  std::vector<const float*> krows, vrows;
  std::vector<KvSpan> spans;
};

class Seq2SeqDecoder {
 public:
  explicit Seq2SeqDecoder(ModelConfig config, uint64_t seed = 42);

  // How step() walks a sequence's K/V history.
  enum class AttentionPath {
    // Block-extent iteration: ask the cache for contiguous spans once per
    // (sequence, layer) and run the span kernels over each — gather-free.
    // Caches without extents (base-class default) silently use the row
    // path; DenseKvCache and genserve::SequenceKv both provide extents.
    kPaged,
    // Per-row pointer gather (two virtual calls per cached token). The
    // pre-paging baseline, kept for benchmarking and equivalence tests;
    // bit-identical to kPaged by construction.
    kRows,
  };

  void set_attention_path(AttentionPath path) { attn_path_ = path; }
  AttentionPath attention_path() const { return attn_path_; }

  // One sequence's slot in a step batch.
  struct StepSlot {
    int prev_token = 0;          // token fed at this step (BOS at step 0)
    int step = 0;                // 0-based decode position
    KvCacheView* cache = nullptr;
    // Chunked prefill feeds prompt rows whose outputs nobody samples; such
    // slots still write K/V and attend (the cache must fill) but skip the
    // vocabulary projection. Their logits rows are left untouched.
    bool need_logits = true;
  };

  // Project the encoder memory [s_src, H] of one sentence into the cache's
  // cross-attention K/V rows. Must run once per sequence before its first
  // step (the once-per-sentence optimization the step loop depends on).
  void init_cross_attention(const Tensor& memory, KvCacheView& cache) const;

  // One fused decoder step over slots.size() independent sequences; each
  // may sit at a different decode position over a different source length.
  // Writes logits [slots.size(), vocab] into `logits` (caller-owned).
  void step(const std::vector<StepSlot>& slots, float* logits,
            DecodeWorkspace& ws) const;
  // Convenience overload with a throwaway workspace.
  void step(const std::vector<StepSlot>& slots, float* logits) const;

  // memory: encoder output [S_src, H] for one sentence. Returns the best
  // hypothesis after beam search (beam_size >= 1; 1 = greedy), implemented
  // on top of step() with one cache per live beam. `kv` chooses where beam
  // caches live: nullptr decodes over DenseKvCaches (fork = deep copy); a
  // genserve::PooledBeamKv decodes through the block pool, sharing
  // unchanged history across beams copy-on-write. The result is
  // bit-identical either way.
  Hypothesis decode(const Tensor& memory, int max_len, int bos_id, int eos_id,
                    int beam_size, BeamKvFactory* kv = nullptr) const;

  const ModelConfig& config() const { return config_; }
  const DecoderWeights& weights() const { return weights_; }

 private:
  // One query's attention over `count` cached K/V rows of `cache` (self
  // history when `self_side`, else cross memory): scores, softmax, weighted
  // values into out[H]. Dispatches between the span and row paths.
  void attend(KvCacheView& cache, int layer, bool self_side, int count,
              const float* q, float* out, float scale,
              DecodeWorkspace& ws) const;

  ModelConfig config_;
  DecoderWeights weights_;
  AttentionPath attn_path_ = AttentionPath::kPaged;
};

}  // namespace turbo::model
