// Seq2Seq transformer decoder with beam search (paper Table 3, Fig. 9).
//
// Step-wise generation: each step runs the beam as a batch through
// num_layers decoder layers (cached causal self-attention + cross-attention
// over the encoder memory + feed-forward), projects to the vocabulary and
// expands the beam. Cross-attention K/V are projected once per sentence.
// This is the workload whose latency grows superlinearly with source length
// in Figure 9 (bottom).
#pragma once

#include <vector>

#include "model/weights.h"
#include "tensor/tensor.h"

namespace turbo::model {

struct Hypothesis {
  std::vector<int> tokens;  // includes BOS, excludes EOS
  double log_prob = 0.0;
};

class Seq2SeqDecoder {
 public:
  explicit Seq2SeqDecoder(ModelConfig config, uint64_t seed = 42);

  // memory: encoder output [S_src, H] for one sentence. Returns the best
  // hypothesis after beam search (beam_size >= 1; 1 = greedy).
  Hypothesis decode(const Tensor& memory, int max_len, int bos_id, int eos_id,
                    int beam_size) const;

  // One decoder forward step, exposed for testing: prev token per beam,
  // step index t (0-based), caches threaded by the caller via decode().
  // Returns logits [beam, vocab].
  const ModelConfig& config() const { return config_; }
  const DecoderWeights& weights() const { return weights_; }

 private:
  ModelConfig config_;
  DecoderWeights weights_;
};

}  // namespace turbo::model
