#include "model/classifier.h"

#include <cmath>

#include "kernels/elementwise.h"
#include "kernels/gemm.h"

namespace turbo::model {

SequenceClassifier::SequenceClassifier(ModelConfig config, int num_classes,
                                       uint64_t seed)
    : encoder_(std::move(config), seed), num_classes_(num_classes) {
  TT_CHECK_GT(num_classes, 1);
  Rng rng(seed ^ 0xc1a55f1e);
  const int H = encoder_.config().hidden;
  pooler_weight_ = Tensor::owned(Shape{H, H});
  rng.fill_normal(pooler_weight_.data<float>(),
                  static_cast<size_t>(pooler_weight_.numel()), 0.0f, 0.02f);
  pooler_bias_ = Tensor::zeros(Shape{H});
  classifier_weight_ = Tensor::owned(Shape{H, num_classes});
  rng.fill_normal(classifier_weight_.data<float>(),
                  static_cast<size_t>(classifier_weight_.numel()), 0.0f,
                  0.02f);
  classifier_bias_ = Tensor::zeros(Shape{num_classes});
}

Tensor SequenceClassifier::classify(const Tensor& ids,
                                    const std::vector<int>* valid_lens) {
  const int B = static_cast<int>(ids.shape()[0]);
  const int S = static_cast<int>(ids.shape()[1]);
  const int H = encoder_.config().hidden;

  Tensor hidden = encoder_.forward(ids, valid_lens);

  // Pool the first-token representation of every sequence.
  Tensor cls = Tensor::owned(Shape{B, H});
  for (int b = 0; b < B; ++b) {
    const float* src =
        hidden.data<float>() + static_cast<long>(b) * S * H;
    std::copy(src, src + H, cls.data<float>() + static_cast<long>(b) * H);
  }
  Tensor pooled = Tensor::owned(Shape{B, H});
  kernels::gemm(cls.data<float>(), pooler_weight_.data<float>(),
                pooled.data<float>(), B, H, H);
  kernels::add_bias(pooled.data<float>(), pooler_bias_.data<float>(), B, H);
  float* p = pooled.data<float>();
  for (long i = 0; i < pooled.numel(); ++i) p[i] = std::tanh(p[i]);

  Tensor logits = Tensor::owned(Shape{B, num_classes_});
  kernels::gemm(pooled.data<float>(), classifier_weight_.data<float>(),
                logits.data<float>(), B, num_classes_, H);
  kernels::add_bias(logits.data<float>(), classifier_bias_.data<float>(), B,
                    num_classes_);
  return logits;
}

std::vector<int> SequenceClassifier::predict(
    const Tensor& ids, const std::vector<int>* valid_lens) {
  Tensor logits = classify(ids, valid_lens);
  const int B = static_cast<int>(logits.shape()[0]);
  std::vector<int> labels(static_cast<size_t>(B));
  for (int b = 0; b < B; ++b) {
    const float* row =
        logits.data<float>() + static_cast<long>(b) * num_classes_;
    int best = 0;
    for (int c = 1; c < num_classes_; ++c) {
      if (row[c] > row[best]) best = c;
    }
    labels[static_cast<size_t>(b)] = best;
  }
  return labels;
}

}  // namespace turbo::model
