// Weight containers for the transformer models. Weights are owned tensors,
// seeded deterministically: the paper's benchmarks likewise use randomly
// initialized models since serving performance is weight-independent.
#pragma once

#include <vector>

#include "common/rng.h"
#include "model/config.h"
#include "tensor/tensor.h"

namespace turbo::model {

struct EncoderLayerWeights {
  // Attention. QKV projection packed: [H, 3H], bias [3H]
  // (column blocks: Q | K | V).
  Tensor qkv_weight, qkv_bias;
  Tensor attn_out_weight, attn_out_bias;  // [H, H], [H]
  Tensor ln1_gamma, ln1_beta;             // [H]
  // Feed-forward.
  Tensor inter_weight, inter_bias;        // [H, I], [I]
  Tensor out_weight, out_bias;            // [I, H], [H]
  Tensor ln2_gamma, ln2_beta;             // [H]

  static EncoderLayerWeights random(const ModelConfig& config, Rng& rng);
};

struct EmbeddingWeights {
  Tensor word;        // [vocab, H]
  Tensor position;    // [max_pos, H]
  Tensor ln_gamma, ln_beta;

  static EmbeddingWeights random(const ModelConfig& config, Rng& rng);
};

struct EncoderWeights {
  EmbeddingWeights embedding;
  // One entry when config.share_layer_weights (ALBERT), else num_layers.
  std::vector<EncoderLayerWeights> layers;

  static EncoderWeights random(const ModelConfig& config, uint64_t seed);
};

struct DecoderLayerWeights {
  // Self-attention (causal, cached).
  Tensor self_qkv_weight, self_qkv_bias;       // [H, 3H], [3H]
  Tensor self_out_weight, self_out_bias;       // [H, H], [H]
  Tensor ln1_gamma, ln1_beta;
  // Cross-attention over the encoder memory.
  Tensor cross_q_weight, cross_q_bias;         // [H, H], [H]
  Tensor cross_kv_weight, cross_kv_bias;       // [H, 2H], [2H]
  Tensor cross_out_weight, cross_out_bias;     // [H, H], [H]
  Tensor ln2_gamma, ln2_beta;
  // Feed-forward.
  Tensor inter_weight, inter_bias;             // [H, I], [I]
  Tensor out_weight, out_bias;                 // [I, H], [H]
  Tensor ln3_gamma, ln3_beta;

  static DecoderLayerWeights random(const ModelConfig& config, Rng& rng);
};

struct DecoderWeights {
  EmbeddingWeights embedding;            // target-side
  std::vector<DecoderLayerWeights> layers;
  Tensor output_proj;                    // [H, vocab] logits projection

  static DecoderWeights random(const ModelConfig& config, uint64_t seed);
};

}  // namespace turbo::model
