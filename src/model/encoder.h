// Encoder models (BERT / ALBERT / DistilBERT): the runtime's numeric
// forward pass.
//
// This is where the pieces meet: the fused computation graph supplies
// tensor lifetimes, the model-aware allocator (Algorithm 1) re-plans
// intermediate placements for each request's sequence length, and the fused
// CPU kernels execute the math in those placements. One plan serves all
// layers (the paper's repeated-structure trick, §6.2.2); hidden states
// ping-pong between two owned buffers across layers.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/builders.h"
#include "graph/graph.h"
#include "memory/model_aware_allocator.h"
#include "model/weights.h"
#include "tensor/tensor.h"

namespace turbo::model {

class EncoderModel {
 public:
  explicit EncoderModel(ModelConfig config, uint64_t seed = 42);

  // Construct from pre-existing weights (e.g. a checkpoint loaded via
  // model/serialization.h).
  EncoderModel(ModelConfig config, EncoderWeights weights);

  // ids: [B, S] int32 token ids. valid_lens (optional, size B) marks each
  // request's true length inside a zero-padded batch; attention to padded
  // keys is masked out. Returns hidden states [B, S, H].
  Tensor forward(const Tensor& ids,
                 const std::vector<int>* valid_lens = nullptr);

  // Same math via the naive unfused path with per-tensor owned buffers and
  // reference kernels. Test oracle for the planned/fused pipeline.
  Tensor forward_reference(const Tensor& ids,
                           const std::vector<int>* valid_lens = nullptr);

  const ModelConfig& config() const { return config_; }
  const graph::Graph& layer_graph() const { return layer_graph_; }
  const EncoderWeights& weights() const { return weights_; }
  memory::ModelAwareAllocator& allocator() { return allocator_; }

  // Planner cost of the most recent forward() (Fig. 13 numerator).
  double last_planning_us() const { return last_planning_us_; }

 private:
  const EncoderLayerWeights& layer_weights(int layer) const {
    return weights_.layers[config_.share_layer_weights
                               ? 0
                               : static_cast<size_t>(layer)];
  }

  ModelConfig config_;
  EncoderWeights weights_;
  graph::Graph layer_graph_;
  std::unordered_map<std::string, int> tensor_id_by_name_;
  memory::ModelAwareAllocator allocator_;
  Tensor hidden_a_, hidden_b_;  // ping-pong hidden-state buffers
  double last_planning_us_ = 0.0;
};

}  // namespace turbo::model
