#include "model/decoder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "kernels/elementwise.h"
#include "kernels/gemm.h"
#include "kernels/reduction.h"

namespace turbo::model {

namespace {

// Per-sentence decode state: growing K/V caches per layer plus the
// precomputed cross-attention keys/values.
struct DecodeState {
  // self_k/self_v: [layer][beam * heads * max_len * d]
  std::vector<std::vector<float>> self_k, self_v;
  // cross_k/cross_v: [layer][heads * s_src * d] (shared across beams)
  std::vector<std::vector<float>> cross_k, cross_v;
};

void log_softmax_row(float* row, int n) {
  float max_v = -std::numeric_limits<float>::infinity();
  for (int i = 0; i < n; ++i) max_v = std::max(max_v, row[i]);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += std::exp(static_cast<double>(row[i]) - max_v);
  const float lse = max_v + static_cast<float>(std::log(sum));
  for (int i = 0; i < n; ++i) row[i] -= lse;
}

}  // namespace

Seq2SeqDecoder::Seq2SeqDecoder(ModelConfig config, uint64_t seed)
    : config_(std::move(config)),
      weights_(DecoderWeights::random(config_, seed)) {}

Hypothesis Seq2SeqDecoder::decode(const Tensor& memory, int max_len,
                                  int bos_id, int eos_id,
                                  int beam_size) const {
  TT_CHECK_EQ(memory.shape().ndim(), 2);
  const int s_src = static_cast<int>(memory.shape()[0]);
  const int H = config_.hidden;
  TT_CHECK_EQ(memory.shape()[1], H);
  TT_CHECK_GE(beam_size, 1);
  TT_CHECK_GE(max_len, 1);
  const int heads = config_.heads;
  const int d = config_.head_dim();
  const int I = config_.intermediate;
  const int vocab = config_.vocab;
  const int L = config_.num_layers;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  DecodeState state;
  state.self_k.assign(static_cast<size_t>(L),
                      std::vector<float>(static_cast<size_t>(beam_size) *
                                         heads * max_len * d));
  state.self_v = state.self_k;
  state.cross_k.assign(static_cast<size_t>(L),
                       std::vector<float>(static_cast<size_t>(heads) * s_src *
                                          d));
  state.cross_v = state.cross_k;

  // Precompute cross-attention K/V from the encoder memory (once per
  // sentence — the optimization the step loop depends on).
  {
    std::vector<float> kv(static_cast<size_t>(s_src) * 2 * H);
    for (int layer = 0; layer < L; ++layer) {
      const auto& w = weights_.layers[static_cast<size_t>(layer)];
      kernels::gemm(memory.data<float>(), w.cross_kv_weight.data<float>(),
                    kv.data(), s_src, 2 * H, H);
      kernels::add_bias(kv.data(), w.cross_kv_bias.data<float>(), s_src,
                        2 * H);
      // Split [s, 2, H] planes into [heads, s_src, d].
      for (int s = 0; s < s_src; ++s) {
        for (int h = 0; h < heads; ++h) {
          for (int dd = 0; dd < d; ++dd) {
            const long src_base = (static_cast<long>(s) * 2) * H + h * d + dd;
            const long dst = (static_cast<long>(h) * s_src + s) * d + dd;
            state.cross_k[static_cast<size_t>(layer)][static_cast<size_t>(dst)] =
                kv[static_cast<size_t>(src_base)];
            state.cross_v[static_cast<size_t>(layer)][static_cast<size_t>(dst)] =
                kv[static_cast<size_t>(src_base + H)];
          }
        }
      }
    }
  }

  std::vector<Hypothesis> beams(1);
  beams[0].tokens = {bos_id};
  std::vector<Hypothesis> finished;

  // Scratch buffers sized for the full beam.
  std::vector<float> x(static_cast<size_t>(beam_size) * H);
  std::vector<float> qkv(static_cast<size_t>(beam_size) * 3 * H);
  std::vector<float> attn(static_cast<size_t>(beam_size) * H);
  std::vector<float> proj(static_cast<size_t>(beam_size) * H);
  std::vector<float> resid(static_cast<size_t>(beam_size) * H);
  std::vector<float> inter(static_cast<size_t>(beam_size) * I);
  std::vector<float> logits(static_cast<size_t>(beam_size) * vocab);

  for (int t = 0; t < max_len; ++t) {
    const int nb = static_cast<int>(beams.size());
    // Embed the last token of each live hypothesis.
    for (int b = 0; b < nb; ++b) {
      const int tok = beams[static_cast<size_t>(b)].tokens.back();
      TT_CHECK_GE(tok, 0);
      TT_CHECK_LT(tok, vocab);
      const float* wv =
          weights_.embedding.word.data<float>() + static_cast<long>(tok) * H;
      const float* pv = weights_.embedding.position.data<float>() +
                        static_cast<long>(std::min(t, config_.max_pos - 1)) *
                            H;
      for (int i = 0; i < H; ++i) x[static_cast<size_t>(b) * H + i] = wv[i] + pv[i];
    }
    kernels::layernorm(x.data(), x.data(),
                       weights_.embedding.ln_gamma.data<float>(),
                       weights_.embedding.ln_beta.data<float>(), nb, H);

    for (int layer = 0; layer < L; ++layer) {
      const auto& w = weights_.layers[static_cast<size_t>(layer)];
      auto& ck = state.self_k[static_cast<size_t>(layer)];
      auto& cv = state.self_v[static_cast<size_t>(layer)];

      // --- cached causal self-attention ---
      std::copy(x.begin(), x.begin() + static_cast<long>(nb) * H,
                resid.begin());
      kernels::gemm(x.data(), w.self_qkv_weight.data<float>(), qkv.data(), nb,
                    3 * H, H);
      kernels::add_bias(qkv.data(), w.self_qkv_bias.data<float>(), nb, 3 * H);
      for (int b = 0; b < nb; ++b) {
        for (int h = 0; h < heads; ++h) {
          const float* qrow = &qkv[(static_cast<size_t>(b) * 3 + 0) * H +
                                   static_cast<size_t>(h) * d];
          const float* krow = &qkv[(static_cast<size_t>(b) * 3 + 1) * H +
                                   static_cast<size_t>(h) * d];
          const float* vrow = &qkv[(static_cast<size_t>(b) * 3 + 2) * H +
                                   static_cast<size_t>(h) * d];
          float* kc = &ck[((static_cast<size_t>(b) * heads + h) * max_len + t) *
                          d];
          float* vc = &cv[((static_cast<size_t>(b) * heads + h) * max_len + t) *
                          d];
          std::copy(krow, krow + d, kc);
          std::copy(vrow, vrow + d, vc);
          // Scores over the cache [0..t].
          std::vector<float> scores(static_cast<size_t>(t) + 1);
          for (int u = 0; u <= t; ++u) {
            const float* ku =
                &ck[((static_cast<size_t>(b) * heads + h) * max_len + u) * d];
            float acc = 0.0f;
            for (int dd = 0; dd < d; ++dd) acc += qrow[dd] * ku[dd];
            scores[static_cast<size_t>(u)] = acc;
          }
          kernels::softmax_rows(scores.data(), 1, t + 1, scale);
          float* out = &attn[static_cast<size_t>(b) * H +
                             static_cast<size_t>(h) * d];
          std::fill(out, out + d, 0.0f);
          for (int u = 0; u <= t; ++u) {
            const float* vu =
                &cv[((static_cast<size_t>(b) * heads + h) * max_len + u) * d];
            const float p = scores[static_cast<size_t>(u)];
            for (int dd = 0; dd < d; ++dd) out[dd] += p * vu[dd];
          }
        }
      }
      kernels::gemm(attn.data(), w.self_out_weight.data<float>(), proj.data(),
                    nb, H, H);
      kernels::add_bias_layernorm(x.data(), proj.data(), resid.data(),
                                  w.self_out_bias.data<float>(),
                                  w.ln1_gamma.data<float>(),
                                  w.ln1_beta.data<float>(), nb, H);

      // --- cross-attention over the encoder memory ---
      std::copy(x.begin(), x.begin() + static_cast<long>(nb) * H,
                resid.begin());
      kernels::gemm(x.data(), w.cross_q_weight.data<float>(), proj.data(), nb,
                    H, H);
      kernels::add_bias(proj.data(), w.cross_q_bias.data<float>(), nb, H);
      const auto& xk = state.cross_k[static_cast<size_t>(layer)];
      const auto& xv = state.cross_v[static_cast<size_t>(layer)];
      for (int b = 0; b < nb; ++b) {
        for (int h = 0; h < heads; ++h) {
          const float* qrow =
              &proj[static_cast<size_t>(b) * H + static_cast<size_t>(h) * d];
          std::vector<float> scores(static_cast<size_t>(s_src));
          for (int s = 0; s < s_src; ++s) {
            const float* ks = &xk[(static_cast<size_t>(h) * s_src + s) * d];
            float acc = 0.0f;
            for (int dd = 0; dd < d; ++dd) acc += qrow[dd] * ks[dd];
            scores[static_cast<size_t>(s)] = acc;
          }
          kernels::softmax_rows(scores.data(), 1, s_src, scale);
          float* out = &attn[static_cast<size_t>(b) * H +
                             static_cast<size_t>(h) * d];
          std::fill(out, out + d, 0.0f);
          for (int s = 0; s < s_src; ++s) {
            const float* vs = &xv[(static_cast<size_t>(h) * s_src + s) * d];
            const float p = scores[static_cast<size_t>(s)];
            for (int dd = 0; dd < d; ++dd) out[dd] += p * vs[dd];
          }
        }
      }
      kernels::gemm(attn.data(), w.cross_out_weight.data<float>(),
                    proj.data(), nb, H, H);
      kernels::add_bias_layernorm(x.data(), proj.data(), resid.data(),
                                  w.cross_out_bias.data<float>(),
                                  w.ln2_gamma.data<float>(),
                                  w.ln2_beta.data<float>(), nb, H);

      // --- feed-forward ---
      std::copy(x.begin(), x.begin() + static_cast<long>(nb) * H,
                resid.begin());
      kernels::gemm(x.data(), w.inter_weight.data<float>(), inter.data(), nb,
                    I, H);
      kernels::add_bias_gelu(inter.data(), w.inter_bias.data<float>(), nb, I);
      kernels::gemm(inter.data(), w.out_weight.data<float>(), proj.data(), nb,
                    H, I);
      kernels::add_bias_layernorm(x.data(), proj.data(), resid.data(),
                                  w.out_bias.data<float>(),
                                  w.ln3_gamma.data<float>(),
                                  w.ln3_beta.data<float>(), nb, H);
    }

    // --- vocabulary projection + beam expansion ---
    kernels::gemm(x.data(), weights_.output_proj.data<float>(), logits.data(),
                  nb, vocab, H);
    for (int b = 0; b < nb; ++b) {
      log_softmax_row(&logits[static_cast<size_t>(b) * vocab], vocab);
    }

    struct Cand {
      double score;
      int beam;
      int token;
    };
    std::vector<Cand> cands;
    for (int b = 0; b < nb; ++b) {
      for (int tok = 0; tok < vocab; ++tok) {
        cands.push_back(Cand{beams[static_cast<size_t>(b)].log_prob +
                                 logits[static_cast<size_t>(b) * vocab + tok],
                             b, tok});
      }
    }
    const size_t keep = std::min<size_t>(cands.size(),
                                         static_cast<size_t>(beam_size));
    std::partial_sort(cands.begin(), cands.begin() + static_cast<long>(keep),
                      cands.end(), [](const Cand& a, const Cand& b) {
                        return a.score > b.score;
                      });

    std::vector<Hypothesis> next;
    std::vector<int> parents;
    for (size_t c = 0; c < keep; ++c) {
      Hypothesis h = beams[static_cast<size_t>(cands[c].beam)];
      h.log_prob = cands[c].score;
      if (cands[c].token == eos_id) {
        finished.push_back(std::move(h));
        continue;
      }
      h.tokens.push_back(cands[c].token);
      next.push_back(std::move(h));
      parents.push_back(cands[c].beam);
    }
    if (next.empty()) break;

    // Reorder self-attention caches to follow surviving hypotheses.
    const long slice = static_cast<long>(heads) * max_len * d;
    for (int layer = 0; layer < L; ++layer) {
      auto& ck = state.self_k[static_cast<size_t>(layer)];
      auto& cv = state.self_v[static_cast<size_t>(layer)];
      std::vector<float> nk(ck.size()), nv(cv.size());
      for (size_t b = 0; b < next.size(); ++b) {
        const long src = static_cast<long>(parents[b]) * slice;
        const long dst = static_cast<long>(b) * slice;
        std::copy(ck.begin() + src, ck.begin() + src + slice,
                  nk.begin() + dst);
        std::copy(cv.begin() + src, cv.begin() + src + slice,
                  nv.begin() + dst);
      }
      ck = std::move(nk);
      cv = std::move(nv);
    }
    beams = std::move(next);
  }

  // Unfinished hypotheses compete too (ran out of length budget).
  for (auto& h : beams) finished.push_back(std::move(h));
  TT_CHECK(!finished.empty());
  auto best = std::max_element(finished.begin(), finished.end(),
                               [](const Hypothesis& a, const Hypothesis& b) {
                                 return a.log_prob < b.log_prob;
                               });
  return *best;
}

}  // namespace turbo::model
