#include "model/decoder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "kernels/elementwise.h"
#include "kernels/gemm.h"
#include "kernels/paged_attention.h"
#include "kernels/reduction.h"

namespace turbo::model {

namespace {

void log_softmax_row(float* row, int n) {
  float max_v = -std::numeric_limits<float>::infinity();
  for (int i = 0; i < n; ++i) max_v = std::max(max_v, row[i]);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += std::exp(static_cast<double>(row[i]) - max_v);
  const float lse = max_v + static_cast<float>(std::log(sum));
  for (int i = 0; i < n; ++i) row[i] -= lse;
}

// The default factory: beam reordering deep-copies DenseKvCaches (whose
// copy constructor shares the immutable cross K/V and clones the self
// caches — exactly what beam reordering needs).
class DenseBeamKv final : public BeamKvFactory {
 public:
  DenseBeamKv(const ModelConfig& config) : config_(config) {}

  std::unique_ptr<KvCacheView> create(int s_src, int max_len) override {
    return std::make_unique<DenseKvCache>(config_, max_len, s_src);
  }
  std::unique_ptr<KvCacheView> fork(KvCacheView& parent) override {
    return std::make_unique<DenseKvCache>(static_cast<DenseKvCache&>(parent));
  }

 private:
  const ModelConfig& config_;
};

}  // namespace

void BeamKvFactory::prepare_token(KvCacheView& cache, int t) {
  (void)cache;
  (void)t;  // dense caches pre-allocate max_len rows; nothing to do
}

bool KvCacheView::self_extents(int layer, int count, std::vector<KvSpan>& out) {
  (void)layer;
  (void)count;
  (void)out;  // no extents: the decoder gathers per-row pointers instead
  return false;
}

bool KvCacheView::cross_extents(int layer, std::vector<KvSpan>& out) {
  (void)layer;
  (void)out;
  return false;
}

// ---------------------------------------------------------------------------
// DenseKvCache
// ---------------------------------------------------------------------------

DenseKvCache::DenseKvCache(const ModelConfig& config, int max_len, int s_src)
    : hidden_(config.hidden), max_len_(max_len), s_src_(s_src) {
  TT_CHECK_GE(max_len, 1);
  TT_CHECK_GE(s_src, 1);
  const size_t L = static_cast<size_t>(config.num_layers);
  self_k_.assign(L, std::vector<float>(static_cast<size_t>(max_len) * hidden_));
  self_v_ = self_k_;
  cross_ = std::make_shared<CrossKv>();
  cross_->k.assign(L, std::vector<float>(static_cast<size_t>(s_src) * hidden_));
  cross_->v = cross_->k;
}

float* DenseKvCache::self_k(int layer, int t) {
  TT_CHECK_LT(t, max_len_);
  return self_k_[static_cast<size_t>(layer)].data() +
         static_cast<size_t>(t) * hidden_;
}

float* DenseKvCache::self_v(int layer, int t) {
  TT_CHECK_LT(t, max_len_);
  return self_v_[static_cast<size_t>(layer)].data() +
         static_cast<size_t>(t) * hidden_;
}

float* DenseKvCache::cross_k(int layer, int s) {
  TT_CHECK_LT(s, s_src_);
  return cross_->k[static_cast<size_t>(layer)].data() +
         static_cast<size_t>(s) * hidden_;
}

float* DenseKvCache::cross_v(int layer, int s) {
  TT_CHECK_LT(s, s_src_);
  return cross_->v[static_cast<size_t>(layer)].data() +
         static_cast<size_t>(s) * hidden_;
}

bool DenseKvCache::self_extents(int layer, int count,
                                std::vector<KvSpan>& out) {
  TT_CHECK_LE(count, max_len_);
  out.clear();
  out.push_back(KvSpan{self_k_[static_cast<size_t>(layer)].data(),
                       self_v_[static_cast<size_t>(layer)].data(), count});
  return true;
}

bool DenseKvCache::cross_extents(int layer, std::vector<KvSpan>& out) {
  out.clear();
  out.push_back(KvSpan{cross_->k[static_cast<size_t>(layer)].data(),
                       cross_->v[static_cast<size_t>(layer)].data(), s_src_});
  return true;
}

// ---------------------------------------------------------------------------
// Seq2SeqDecoder
// ---------------------------------------------------------------------------

Seq2SeqDecoder::Seq2SeqDecoder(ModelConfig config, uint64_t seed)
    : config_(std::move(config)),
      weights_(DecoderWeights::random(config_, seed)) {}

void Seq2SeqDecoder::init_cross_attention(const Tensor& memory,
                                          KvCacheView& cache) const {
  TT_CHECK_MSG(!config_.decoder_only,
               "decoder-only model has no cross-attention to initialize");
  TT_CHECK_EQ(memory.shape().ndim(), 2);
  const int s_src = static_cast<int>(memory.shape()[0]);
  const int H = config_.hidden;
  TT_CHECK_EQ(memory.shape()[1], H);
  TT_CHECK_EQ(cache.src_len(), s_src);

  std::vector<float> kv(static_cast<size_t>(s_src) * 2 * H);
  for (int layer = 0; layer < config_.num_layers; ++layer) {
    const auto& w = weights_.layers[static_cast<size_t>(layer)];
    kernels::gemm(memory.data<float>(), w.cross_kv_weight.data<float>(),
                  kv.data(), s_src, 2 * H, H);
    kernels::add_bias(kv.data(), w.cross_kv_bias.data<float>(), s_src, 2 * H);
    // kv row s is [K | V], each an [H] = [heads * d] strip.
    for (int s = 0; s < s_src; ++s) {
      const float* row = &kv[static_cast<size_t>(s) * 2 * H];
      std::copy(row, row + H, cache.cross_k(layer, s));
      std::copy(row + H, row + 2 * H, cache.cross_v(layer, s));
    }
  }
}

void Seq2SeqDecoder::step(const std::vector<StepSlot>& slots,
                          float* logits) const {
  DecodeWorkspace ws;
  step(slots, logits, ws);
}

void Seq2SeqDecoder::step(const std::vector<StepSlot>& slots, float* logits,
                          DecodeWorkspace& ws) const {
  const int nb = static_cast<int>(slots.size());
  TT_CHECK_GE(nb, 1);
  const int H = config_.hidden;
  const int d = config_.head_dim();
  const int I = config_.intermediate;
  const int vocab = config_.vocab;
  const int L = config_.num_layers;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  // resize() never shrinks capacity, so a reused workspace stops
  // allocating once it has seen the largest batch.
  auto& x = ws.x;
  auto& qkv = ws.qkv;
  auto& attn = ws.attn;
  auto& proj = ws.proj;
  auto& resid = ws.resid;
  auto& inter = ws.inter;
  x.resize(static_cast<size_t>(nb) * H);
  qkv.resize(static_cast<size_t>(nb) * 3 * H);
  attn.resize(static_cast<size_t>(nb) * H);
  proj.resize(static_cast<size_t>(nb) * H);
  resid.resize(static_cast<size_t>(nb) * H);
  inter.resize(static_cast<size_t>(nb) * I);

  // Embed each slot's previous token at its own position.
  for (int b = 0; b < nb; ++b) {
    const StepSlot& slot = slots[static_cast<size_t>(b)];
    TT_CHECK(slot.cache != nullptr);
    TT_CHECK_GE(slot.step, 0);
    TT_CHECK_GE(slot.prev_token, 0);
    TT_CHECK_LT(slot.prev_token, vocab);
    const float* wv = weights_.embedding.word.data<float>() +
                      static_cast<long>(slot.prev_token) * H;
    const float* pv =
        weights_.embedding.position.data<float>() +
        static_cast<long>(std::min(slot.step, config_.max_pos - 1)) * H;
    for (int i = 0; i < H; ++i) x[static_cast<size_t>(b) * H + i] = wv[i] + pv[i];
  }
  kernels::layernorm(x.data(), x.data(),
                     weights_.embedding.ln_gamma.data<float>(),
                     weights_.embedding.ln_beta.data<float>(), nb, H);

  for (int layer = 0; layer < L; ++layer) {
    const auto& w = weights_.layers[static_cast<size_t>(layer)];

    // --- cached causal self-attention ---
    std::copy(x.begin(), x.begin() + static_cast<long>(nb) * H, resid.begin());
    kernels::gemm(x.data(), w.self_qkv_weight.data<float>(), qkv.data(), nb,
                  3 * H, H);
    kernels::add_bias(qkv.data(), w.self_qkv_bias.data<float>(), nb, 3 * H);
    for (int b = 0; b < nb; ++b) {
      const StepSlot& slot = slots[static_cast<size_t>(b)];
      KvCacheView& cache = *slot.cache;
      const int t = slot.step;
      const float* qfull = &qkv[(static_cast<size_t>(b) * 3 + 0) * H];
      const float* kfull = &qkv[(static_cast<size_t>(b) * 3 + 1) * H];
      const float* vfull = &qkv[(static_cast<size_t>(b) * 3 + 2) * H];
      std::copy(kfull, kfull + H, cache.self_k(layer, t));
      std::copy(vfull, vfull + H, cache.self_v(layer, t));
      attend(cache, layer, /*self_side=*/true, t + 1, qfull,
             &attn[static_cast<size_t>(b) * H], scale, ws);
    }
    kernels::gemm(attn.data(), w.self_out_weight.data<float>(), proj.data(),
                  nb, H, H);
    kernels::add_bias_layernorm(x.data(), proj.data(), resid.data(),
                                w.self_out_bias.data<float>(),
                                w.ln1_gamma.data<float>(),
                                w.ln1_beta.data<float>(), nb, H);

    // --- cross-attention over each slot's encoder memory ---
    // A decoder-only (causal LM) layer is self-attention + FFN: the whole
    // cross sublayer — projection, attention and its residual layernorm —
    // is absent, not merely zeroed.
    if (!config_.decoder_only) {
      std::copy(x.begin(), x.begin() + static_cast<long>(nb) * H,
                resid.begin());
      kernels::gemm(x.data(), w.cross_q_weight.data<float>(), proj.data(), nb,
                    H, H);
      kernels::add_bias(proj.data(), w.cross_q_bias.data<float>(), nb, H);
      for (int b = 0; b < nb; ++b) {
        KvCacheView& cache = *slots[static_cast<size_t>(b)].cache;
        attend(cache, layer, /*self_side=*/false, cache.src_len(),
               &proj[static_cast<size_t>(b) * H],
               &attn[static_cast<size_t>(b) * H], scale, ws);
      }
      kernels::gemm(attn.data(), w.cross_out_weight.data<float>(),
                    proj.data(), nb, H, H);
      kernels::add_bias_layernorm(x.data(), proj.data(), resid.data(),
                                  w.cross_out_bias.data<float>(),
                                  w.ln2_gamma.data<float>(),
                                  w.ln2_beta.data<float>(), nb, H);
    }

    // --- feed-forward ---
    std::copy(x.begin(), x.begin() + static_cast<long>(nb) * H, resid.begin());
    kernels::gemm(x.data(), w.inter_weight.data<float>(), inter.data(), nb, I,
                  H);
    kernels::add_bias_gelu(inter.data(), w.inter_bias.data<float>(), nb, I);
    kernels::gemm(inter.data(), w.out_weight.data<float>(), proj.data(), nb,
                  H, I);
    kernels::add_bias_layernorm(x.data(), proj.data(), resid.data(),
                                w.out_bias.data<float>(),
                                w.ln3_gamma.data<float>(),
                                w.ln3_beta.data<float>(), nb, H);
  }

  // Vocabulary projection. Prompt rows fed during chunked prefill carry
  // need_logits = false: gather the flagged rows, project only those, and
  // scatter back. gemm rows are independent, so the compact path produces
  // bit-identical logits for every flagged row; unflagged rows of `logits`
  // are left untouched.
  int keep = 0;
  for (const StepSlot& slot : slots) keep += slot.need_logits ? 1 : 0;
  if (keep == nb) {
    kernels::gemm(x.data(), weights_.output_proj.data<float>(), logits, nb,
                  vocab, H);
  } else if (keep > 0) {
    auto& xg = ws.xg;
    auto& lg = ws.lg;
    xg.resize(static_cast<size_t>(keep) * H);
    lg.resize(static_cast<size_t>(keep) * vocab);
    int g = 0;
    for (int b = 0; b < nb; ++b) {
      if (!slots[static_cast<size_t>(b)].need_logits) continue;
      std::copy(x.begin() + static_cast<long>(b) * H,
                x.begin() + static_cast<long>(b + 1) * H,
                xg.begin() + static_cast<long>(g) * H);
      ++g;
    }
    kernels::gemm(xg.data(), weights_.output_proj.data<float>(), lg.data(),
                  keep, vocab, H);
    g = 0;
    for (int b = 0; b < nb; ++b) {
      if (!slots[static_cast<size_t>(b)].need_logits) continue;
      std::copy(lg.begin() + static_cast<long>(g) * vocab,
                lg.begin() + static_cast<long>(g + 1) * vocab,
                logits + static_cast<long>(b) * vocab);
      ++g;
    }
  }
}

void Seq2SeqDecoder::attend(KvCacheView& cache, int layer, bool self_side,
                            int count, const float* q, float* out, float scale,
                            DecodeWorkspace& ws) const {
  const int H = config_.hidden;
  const int heads = config_.heads;
  const int d = config_.head_dim();
  auto& scores = ws.scores;

  auto& spans = ws.spans;
  const bool paged =
      attn_path_ == AttentionPath::kPaged &&
      (self_side ? cache.self_extents(layer, count, spans)
                 : cache.cross_extents(layer, spans));
  if (paged) {
    long covered = 0;
    for (const KvSpan& span : spans) covered += span.rows;
    TT_CHECK_EQ(covered, count);
    // Scores live [heads, count]: the kernels stream each K/V row once
    // past all heads (splitting big extent lists across threads), with a
    // per-head softmax in between.
    scores.resize(static_cast<size_t>(heads) * count);
    kernels::paged_qk_dot(q, spans.data(), static_cast<int>(spans.size()),
                          count, H, heads, d, scores.data());
    for (int h = 0; h < heads; ++h) {
      kernels::softmax_row(scores.data() + static_cast<long>(h) * count, count,
                           scale);
    }
    std::fill(out, out + H, 0.0f);
    kernels::paged_av_accumulate(scores.data(), spans.data(),
                                 static_cast<int>(spans.size()), count, H,
                                 heads, d, out);
    return;
  }
  scores.resize(static_cast<size_t>(count));

  // Row-pointer fallback: gather one K and one V pointer per cached token,
  // then walk them per head. Arithmetic (ascending-feature dots, ascending-
  // position accumulation) matches the span kernels exactly, so both paths
  // are bit-identical.
  auto& krows = ws.krows;
  auto& vrows = ws.vrows;
  krows.assign(static_cast<size_t>(count), nullptr);
  vrows.assign(static_cast<size_t>(count), nullptr);
  for (int u = 0; u < count; ++u) {
    krows[static_cast<size_t>(u)] =
        self_side ? cache.self_k(layer, u) : cache.cross_k(layer, u);
    vrows[static_cast<size_t>(u)] =
        self_side ? cache.self_v(layer, u) : cache.cross_v(layer, u);
  }
  for (int h = 0; h < heads; ++h) {
    const float* qrow = q + static_cast<size_t>(h) * d;
    for (int u = 0; u < count; ++u) {
      const float* ku = krows[static_cast<size_t>(u)] + h * d;
      float acc = 0.0f;
      for (int dd = 0; dd < d; ++dd) acc += qrow[dd] * ku[dd];
      scores[static_cast<size_t>(u)] = acc;
    }
    kernels::softmax_row(scores.data(), count, scale);
    float* o = out + static_cast<size_t>(h) * d;
    std::fill(o, o + d, 0.0f);
    for (int u = 0; u < count; ++u) {
      const float* vu = vrows[static_cast<size_t>(u)] + h * d;
      const float p = scores[static_cast<size_t>(u)];
      for (int dd = 0; dd < d; ++dd) o[dd] += p * vu[dd];
    }
  }
}

Hypothesis Seq2SeqDecoder::decode(const Tensor& memory, int max_len,
                                  int bos_id, int eos_id, int beam_size,
                                  BeamKvFactory* kv) const {
  TT_CHECK_MSG(!config_.decoder_only,
               "decode() beam search requires encoder memory; decoder-only "
               "models are served through GenerationServer's causal path");
  TT_CHECK_EQ(memory.shape().ndim(), 2);
  const int s_src = static_cast<int>(memory.shape()[0]);
  TT_CHECK_EQ(memory.shape()[1], config_.hidden);
  TT_CHECK_GE(beam_size, 1);
  TT_CHECK_GE(max_len, 1);
  const int vocab = config_.vocab;

  DenseBeamKv dense(config_);
  if (kv == nullptr) kv = &dense;

  std::vector<Hypothesis> beams(1);
  beams[0].tokens = {bos_id};
  std::vector<std::unique_ptr<KvCacheView>> caches;
  // Cross-attention K/V once per sentence; beam forks share them.
  caches.push_back(kv->create(s_src, max_len));
  init_cross_attention(memory, *caches[0]);
  std::vector<Hypothesis> finished;

  std::vector<float> logits(static_cast<size_t>(beam_size) * vocab);
  DecodeWorkspace ws;

  for (int t = 0; t < max_len; ++t) {
    const int nb = static_cast<int>(beams.size());
    std::vector<StepSlot> slots(static_cast<size_t>(nb));
    for (int b = 0; b < nb; ++b) {
      kv->prepare_token(*caches[static_cast<size_t>(b)], t);
      slots[static_cast<size_t>(b)] = StepSlot{
          beams[static_cast<size_t>(b)].tokens.back(), t,
          caches[static_cast<size_t>(b)].get()};
    }
    step(slots, logits.data(), ws);
    for (int b = 0; b < nb; ++b) {
      log_softmax_row(&logits[static_cast<size_t>(b) * vocab], vocab);
    }

    struct Cand {
      double score;
      int beam;
      int token;
    };
    std::vector<Cand> cands;
    for (int b = 0; b < nb; ++b) {
      for (int tok = 0; tok < vocab; ++tok) {
        cands.push_back(Cand{beams[static_cast<size_t>(b)].log_prob +
                                 logits[static_cast<size_t>(b) * vocab + tok],
                             b, tok});
      }
    }
    const size_t keep = std::min<size_t>(cands.size(),
                                         static_cast<size_t>(beam_size));
    std::partial_sort(cands.begin(), cands.begin() + static_cast<long>(keep),
                      cands.end(), [](const Cand& a, const Cand& b) {
                        return a.score > b.score;
                      });

    std::vector<Hypothesis> next;
    std::vector<int> parents;
    for (size_t c = 0; c < keep; ++c) {
      Hypothesis h = beams[static_cast<size_t>(cands[c].beam)];
      h.log_prob = cands[c].score;
      if (cands[c].token == eos_id) {
        finished.push_back(std::move(h));
        continue;
      }
      h.tokens.push_back(cands[c].token);
      next.push_back(std::move(h));
      parents.push_back(cands[c].beam);
    }
    if (next.empty()) break;

    // Self-attention caches follow surviving hypotheses (cross K/V
    // shared). A parent's last child takes the parent's cache over
    // outright — greedy decode and self-continuing beams never fork, and
    // the transient reservation of a reorder is bounded by the extra
    // children, not by 2x the beam. Only parents surviving into multiple
    // hypotheses fork (dense: deep copy; pooled: refcount + CoW).
    std::vector<int> remaining(static_cast<size_t>(nb), 0);
    for (const int p : parents) ++remaining[static_cast<size_t>(p)];
    std::vector<std::unique_ptr<KvCacheView>> next_caches;
    next_caches.reserve(next.size());
    for (size_t b = 0; b < next.size(); ++b) {
      const size_t p = static_cast<size_t>(parents[b]);
      if (--remaining[p] == 0) {
        next_caches.push_back(std::move(caches[p]));
      } else {
        next_caches.push_back(kv->fork(*caches[p]));
      }
    }
    caches = std::move(next_caches);
    beams = std::move(next);
  }

  // Unfinished hypotheses compete too (ran out of length budget).
  for (auto& h : beams) finished.push_back(std::move(h));
  TT_CHECK(!finished.empty());
  auto best = std::max_element(finished.begin(), finished.end(),
                               [](const Hypothesis& a, const Hypothesis& b) {
                                 return a.log_prob < b.log_prob;
                               });
  return *best;
}

}  // namespace turbo::model
