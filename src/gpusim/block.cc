#include "gpusim/block.h"

namespace turbo::gpusim {

BlockSim::BlockSim(const DeviceSpec& spec, int threads, long smem_bytes)
    : threads_(threads), smem_bytes_(smem_bytes), cc_(spec) {
  TT_CHECK_GT(threads, 0);
  TT_CHECK_EQ(threads % kWarpSize, 0);
  TT_CHECK_LE(threads, spec.max_threads_per_block);
  TT_CHECK_GE(smem_bytes, 0);
  TT_CHECK_LE(smem_bytes, spec.smem_per_block_bytes);
  smem_data_.resize(static_cast<size_t>(smem_bytes) / sizeof(float) + 1, 0.0f);
}

}  // namespace turbo::gpusim
