#include "gpusim/warp.h"

namespace turbo::gpusim {

void warp_all_reduce(std::span<WarpVec> vecs, ReduceOp op, CycleCounter& cc) {
  const int x = static_cast<int>(vecs.size());
  if (x == 0) return;
  for (int mask = kWarpSize / 2; mask > 0; mask >>= 1) {
    // X independent shuffles, then X independent adds. Within one step the
    // add depends on its shuffle, so the step costs one shuffle latency plus
    // one ALU latency when X == 1; for larger X issue slots dominate and the
    // per-row cost amortizes — exactly the ILP effect of Figure 4.
    cc.charge_shfl_batch(x);
    cc.charge_alu_batch(x);
    for (auto& v : vecs) {
      const WarpVec other = shfl_xor(v, mask);
      for (int i = 0; i < kWarpSize; ++i) {
        v[i] = apply(op, v[i], other[i]);
      }
    }
  }
}

void warp_reduce(WarpVec& v, ReduceOp op, CycleCounter& cc) {
  warp_all_reduce(std::span<WarpVec>(&v, 1), op, cc);
}

}  // namespace turbo::gpusim
