#include "gpusim/launch.h"

#include <algorithm>
#include <cmath>

namespace turbo::gpusim {

int occupancy_blocks_per_sm(const DeviceSpec& spec, int block_threads,
                            long block_smem_bytes) {
  TT_CHECK_GT(block_threads, 0);
  TT_CHECK_LE(block_threads, spec.max_threads_per_block);
  TT_CHECK_GE(block_smem_bytes, 0);
  TT_CHECK_LE(block_smem_bytes, spec.smem_per_block_bytes);

  int by_threads = spec.max_threads_per_sm / block_threads;
  int by_smem = block_smem_bytes == 0
                    ? spec.max_blocks_per_sm
                    : static_cast<int>(spec.smem_per_sm_bytes /
                                       block_smem_bytes);
  int blocks = std::min({spec.max_blocks_per_sm, by_threads, by_smem});
  return std::max(blocks, 1);
}

LaunchResult launch_time(const DeviceSpec& spec, int grid_blocks,
                         int block_threads, long block_smem_bytes,
                         double block_cycles) {
  TT_CHECK_GT(grid_blocks, 0);
  TT_CHECK_GE(block_cycles, 0.0);

  LaunchResult r;
  r.block_cycles = block_cycles;
  r.grid_blocks = grid_blocks;
  r.blocks_per_sm = occupancy_blocks_per_sm(spec, block_threads,
                                            block_smem_bytes);
  const int concurrent = spec.num_sms * r.blocks_per_sm;
  r.waves = (grid_blocks + concurrent - 1) / concurrent;
  r.time_us = spec.kernel_launch_us +
              r.waves * block_cycles / (spec.clock_ghz * 1e3);
  return r;
}

}  // namespace turbo::gpusim
