// Grid-level launch model: occupancy + wave execution.
//
// A kernel launch runs `grid_blocks` thread blocks over the device's SMs.
// The simulator executes (or costs) one representative block and the launch
// model converts per-block cycles into wall time:
//
//   waves    = ceil(grid_blocks / (num_sms * blocks_per_sm))
//   time_us  = launch_overhead + waves * block_cycles / clock
//
// blocks_per_sm comes from the standard occupancy limits (threads, blocks,
// shared memory per SM). Concurrent blocks on one SM share issue slots; we
// fold that into the wave count rather than slowing each block, which keeps
// relative comparisons between kernels with equal resource usage exact.
#pragma once

#include "common/check.h"
#include "gpusim/device_spec.h"

namespace turbo::gpusim {

struct LaunchResult {
  double block_cycles = 0;  // critical-path cycles of one block
  int grid_blocks = 0;
  int blocks_per_sm = 0;
  int waves = 0;
  double time_us = 0;
};

// Max resident blocks per SM for the given per-block resource usage.
int occupancy_blocks_per_sm(const DeviceSpec& spec, int block_threads,
                            long block_smem_bytes);

// Wall time for a launch whose blocks each take `block_cycles` cycles.
LaunchResult launch_time(const DeviceSpec& spec, int grid_blocks,
                         int block_threads, long block_smem_bytes,
                         double block_cycles);

}  // namespace turbo::gpusim
