// SIMT warp-program interpreter.
//
// A minimal instruction set executed lane-accurately over one warp, with
// the same issue/latency cycle accounting as the hand-written kernels. This
// is the "assembly-level" view of the paper's Figure 4: reduction kernels
// can be written as instruction sequences, and the interpreter's scoreboard
// reproduces the difference between the baseline's dependent
// SHFL->FADD->SHFL chain and the XElem interleaving, instruction by
// instruction — including the dual-issue window the paper's right-hand
// panel illustrates.
//
// Registers are warp-wide (32 lanes). The scoreboard tracks, per register,
// the cycle its value becomes available; an instruction issues at
//   max(next_issue_slot, operands_ready)
// and completes `latency` cycles later. Independent instructions therefore
// overlap; dependent ones stall — exactly the ILP model of
// CycleCounter::charge_batch, but derived per-instruction.
#pragma once

#include <string>
#include <vector>

#include "gpusim/warp.h"

namespace turbo::gpusim {

enum class Opcode {
  kFAdd,      // dst = src_a + src_b
  kFMul,      // dst = src_a * src_b
  kFMax,      // dst = max(src_a, src_b)
  kShflXor,   // dst = __shfl_xor_sync(src_a, imm)
  kShflDown,  // dst = __shfl_down_sync(src_a, imm)
  kMovImm,    // dst = imm_value broadcast to all lanes
};

struct Instr {
  Opcode op;
  int dst = 0;
  int src_a = 0;
  int src_b = 0;        // unused for shuffles / mov
  int imm = 0;          // shuffle distance
  float imm_value = 0;  // kMovImm payload

  static Instr fadd(int dst, int a, int b) {
    return {Opcode::kFAdd, dst, a, b, 0, 0};
  }
  static Instr fmul(int dst, int a, int b) {
    return {Opcode::kFMul, dst, a, b, 0, 0};
  }
  static Instr fmax(int dst, int a, int b) {
    return {Opcode::kFMax, dst, a, b, 0, 0};
  }
  static Instr shfl_xor(int dst, int src, int mask) {
    return {Opcode::kShflXor, dst, src, 0, mask, 0};
  }
  static Instr shfl_down(int dst, int src, int delta) {
    return {Opcode::kShflDown, dst, src, 0, delta, 0};
  }
  static Instr mov(int dst, float value) {
    return {Opcode::kMovImm, dst, 0, 0, 0, value};
  }
};

struct ProgramResult {
  double cycles = 0;               // completion time of the last writeback
  std::vector<WarpVec> registers;  // final register file
  int instructions = 0;
};

// Executes `program` over `initial_registers` (register file indexed by
// Instr operands; grown on demand, zero-initialized). The scoreboard model
// issues at most one instruction per `issue` cycles of its class and
// retires after its latency.
ProgramResult run_warp_program(const std::vector<Instr>& program,
                               std::vector<WarpVec> initial_registers,
                               const DeviceSpec& spec);

// Program generators for the two Figure 4 reduction strategies, reducing
// `x` registers r0..r{x-1} in place (each ends with the full warp sum in
// every lane). Scratch registers start at index x.
std::vector<Instr> make_reduce_chain_program(int x);        // serialized
std::vector<Instr> make_reduce_interleaved_program(int x);  // XElem style

}  // namespace turbo::gpusim
