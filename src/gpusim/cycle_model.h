// Cycle accounting for the warp-level simulator.
//
// A CycleCounter accumulates the critical-path cycles of one thread block.
// Kernels charge it through small helpers that encode the GPU issue model:
// a batch of K *independent* instructions of the same class completes in
//   max(K * issue, latency)
// cycles — i.e. independent work pipelines behind the first instruction's
// latency, while a chain of K *dependent* instructions costs K * latency.
//
// This asymmetry is the heart of the paper's Figure 4: the classical
// warpReduce is a dependency chain (SHFL -> FADD -> SHFL -> ...) and pays
// full latency per step, while warpAllReduceSum_XElem interleaves X
// independent rows so the shuffles pipeline.
#pragma once

#include <algorithm>

#include "common/check.h"
#include "gpusim/device_spec.h"

namespace turbo::gpusim {

class CycleCounter {
 public:
  explicit CycleCounter(const DeviceSpec& spec) : spec_(&spec) {}

  double cycles() const { return cycles_; }
  void reset() { cycles_ = 0; }

  // Raw charge.
  void charge(double c) {
    TT_CHECK_GE(c, 0.0);
    cycles_ += c;
  }

  // K independent instructions with the given issue/latency class.
  void charge_batch(int k, double issue, double latency) {
    if (k <= 0) return;
    cycles_ += std::max(static_cast<double>(k) * issue, latency);
  }

  // A chain of K dependent instructions.
  void charge_chain(int k, double latency) {
    if (k <= 0) return;
    cycles_ += static_cast<double>(k) * latency;
  }

  // --- convenience wrappers for common instruction classes ---
  void charge_alu_batch(int k) {
    charge_batch(k, spec_->alu_issue, spec_->alu_latency);
  }
  void charge_sfu_batch(int k) {
    charge_batch(k, spec_->sfu_issue, spec_->sfu_latency);
  }
  void charge_shfl_batch(int k) {
    charge_batch(k, spec_->shfl_issue, spec_->shfl_latency);
  }
  void charge_smem_batch(int k) {
    charge_batch(k, spec_->smem_issue, spec_->smem_latency);
  }
  void charge_sync() { cycles_ += spec_->sync_cycles; }
  void charge_divergence() { cycles_ += spec_->divergence_cycles; }

  // A phase that streams `bytes` of global memory: one cold-load latency
  // plus bandwidth-limited transfer at the per-SM share of DRAM bandwidth.
  void charge_gmem_stream(double bytes) {
    TT_CHECK_GE(bytes, 0.0);
    if (bytes == 0) return;
    cycles_ += spec_->gmem_latency + bytes / spec_->gmem_bytes_per_cycle_per_sm();
  }

  const DeviceSpec& spec() const { return *spec_; }

 private:
  const DeviceSpec* spec_;
  double cycles_ = 0;
};

}  // namespace turbo::gpusim
