// Thread-block execution context.
//
// A BlockSim owns the critical-path cycle counter and the shared-memory
// scratch of one thread block. gpukernel code uses it the way CUDA kernel
// code uses __shared__ arrays and __syncthreads(): smem traffic and barriers
// are charged to the block's counter.
#pragma once

#include <vector>

#include "common/check.h"
#include "gpusim/cycle_model.h"
#include "gpusim/warp.h"

namespace turbo::gpusim {

class BlockSim {
 public:
  // threads must be a positive multiple of the warp size.
  BlockSim(const DeviceSpec& spec, int threads, long smem_bytes = 0);

  int threads() const { return threads_; }
  int num_warps() const { return threads_ / kWarpSize; }
  long smem_bytes() const { return smem_bytes_; }

  CycleCounter& cycles() { return cc_; }
  const CycleCounter& cycles() const { return cc_; }
  const DeviceSpec& spec() const { return cc_.spec(); }

  // __syncthreads().
  void sync() { cc_.charge_sync(); }

  // Shared-memory scratch, indexed in floats. Reading/writing it is modeled
  // by charge helpers on the counter; this storage carries the numerics.
  float& smem(int idx) {
    TT_CHECK_GE(idx, 0);
    TT_CHECK_LT(idx, static_cast<int>(smem_data_.size()));
    return smem_data_[static_cast<size_t>(idx)];
  }

 private:
  int threads_;
  long smem_bytes_;
  CycleCounter cc_;
  std::vector<float> smem_data_;
};

}  // namespace turbo::gpusim
