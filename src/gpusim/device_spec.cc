#include "gpusim/device_spec.h"

namespace turbo::gpusim {

DeviceSpec DeviceSpec::rtx2060() {
  DeviceSpec spec;
  spec.name = "RTX 2060";
  spec.num_sms = 30;
  spec.clock_ghz = 1.68;
  spec.max_threads_per_sm = 1024;
  spec.max_blocks_per_sm = 16;
  spec.smem_per_sm_bytes = 64 * 1024;
  spec.mem_bandwidth_gbps = 336.0;
  spec.fp32_tflops = 6.45;
  spec.tensor_core_tflops = 51.6;
  spec.kernel_launch_us = 5.0;
  return spec;
}

DeviceSpec DeviceSpec::v100() {
  DeviceSpec spec;
  spec.name = "Tesla V100";
  spec.num_sms = 80;
  spec.clock_ghz = 1.53;
  spec.max_threads_per_sm = 2048;
  spec.max_blocks_per_sm = 32;
  spec.smem_per_sm_bytes = 96 * 1024;
  spec.mem_bandwidth_gbps = 900.0;
  spec.fp32_tflops = 15.7;
  spec.tensor_core_tflops = 125.0;
  spec.kernel_launch_us = 4.0;
  return spec;
}

}  // namespace turbo::gpusim
