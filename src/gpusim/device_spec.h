// Parameters of the simulated CUDA device.
//
// The paper evaluates on an NVIDIA RTX 2060 (serving + end-to-end figures)
// and a Tesla V100 (kernel microbenchmarks, Fig. 5 / Table 2). This struct
// carries both the architectural limits needed for occupancy and the
// cycle-cost parameters used by the warp-level execution simulator.
//
// Cost parameters are Turing/Volta-class estimates. Absolute numbers do not
// need to match silicon; what matters for reproducing the paper is that the
// *ratios* between shuffle latency, issue width, shared-memory round trips
// and __syncthreads barriers are realistic, because those ratios are exactly
// what the TurboTransformers batch-reduction algorithm optimizes.
#pragma once

#include <string>

namespace turbo::gpusim {

struct DeviceSpec {
  std::string name;

  // --- architecture ---
  int num_sms = 30;
  double clock_ghz = 1.68;
  int warp_size = 32;
  int max_threads_per_block = 1024;
  int max_threads_per_sm = 1024;
  int max_blocks_per_sm = 16;
  long smem_per_sm_bytes = 64 * 1024;
  long smem_per_block_bytes = 48 * 1024;

  // --- device-wide throughput (used by the roofline in src/perfmodel) ---
  double mem_bandwidth_gbps = 336.0;  // GB/s
  double fp32_tflops = 6.45;
  double tensor_core_tflops = 51.6;  // fp16 TC peak; 0 disables TC profile

  // --- per-kernel fixed overhead ---
  double kernel_launch_us = 5.0;

  // --- instruction cost model (cycles) ---
  // latency: producer->consumer dependent-use delay.
  // issue:   cycles the warp scheduler is occupied issuing the instruction;
  //          independent instructions can issue back-to-back at this rate.
  // Dependent-use latencies follow the Volta/Turing microbenchmark
  // literature: SHFL ~22 cycles to first use, shared-memory loads ~28,
  // barriers on a live block ~100 cycles including arrival spread.
  double shfl_latency = 22.0;
  double shfl_issue = 2.0;
  double alu_latency = 5.0;
  double alu_issue = 1.0;
  double sfu_latency = 14.0;  // exp / rsqrt on the special function unit
  double sfu_issue = 4.0;
  double smem_latency = 28.0;
  double smem_issue = 2.0;
  double sync_cycles = 100.0;        // __syncthreads barrier
  double divergence_cycles = 24.0;   // branch re-convergence penalty
  double gmem_latency = 420.0;       // first dependent use of a cold load

  // Sustained global-memory bytes an SM can move per cycle, derived from the
  // device bandwidth split evenly across SMs.
  double gmem_bytes_per_cycle_per_sm() const {
    return mem_bandwidth_gbps * 1e9 / (clock_ghz * 1e9) / num_sms;
  }

  static DeviceSpec rtx2060();
  static DeviceSpec v100();
};

}  // namespace turbo::gpusim
