// Warp-level register file and shuffle primitives.
//
// A WarpVec is the 32 per-lane values of one register across a warp. Kernels
// in src/gpukernels are written against WarpVec exactly as the corresponding
// CUDA kernels are written against float registers + __shfl_xor_sync: the
// simulator executes the real lane arithmetic (so outputs are bit-for-bit
// testable) while the CycleCounter charges the issue/latency cost of each
// instruction batch.
#pragma once

#include <array>
#include <cmath>
#include <span>

#include "common/check.h"
#include "gpusim/cycle_model.h"

namespace turbo::gpusim {

inline constexpr int kWarpSize = 32;

struct WarpVec {
  std::array<float, kWarpSize> lane{};

  static WarpVec filled(float v) {
    WarpVec w;
    w.lane.fill(v);
    return w;
  }

  float& operator[](int i) { return lane[static_cast<size_t>(i)]; }
  float operator[](int i) const { return lane[static_cast<size_t>(i)]; }
};

// --- lane-wise arithmetic (numerics only; callers charge cycles) ---

inline WarpVec operator+(const WarpVec& a, const WarpVec& b) {
  WarpVec r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] + b[i];
  return r;
}

inline WarpVec operator-(const WarpVec& a, const WarpVec& b) {
  WarpVec r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] - b[i];
  return r;
}

inline WarpVec operator*(const WarpVec& a, const WarpVec& b) {
  WarpVec r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] * b[i];
  return r;
}

inline WarpVec lane_max(const WarpVec& a, const WarpVec& b) {
  WarpVec r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = std::max(a[i], b[i]);
  return r;
}

// __shfl_xor_sync: lane i reads the register of lane (i ^ mask).
inline WarpVec shfl_xor(const WarpVec& v, int mask) {
  TT_CHECK_GT(mask, 0);
  TT_CHECK_LT(mask, kWarpSize);
  WarpVec r;
  for (int i = 0; i < kWarpSize; ++i) r[i] = v[i ^ mask];
  return r;
}

// __shfl_down_sync: lane i reads lane (i + delta); out-of-range lanes keep
// their own value (mirrors CUDA semantics where the value is undefined and
// reduction kernels arrange never to consume it).
inline WarpVec shfl_down(const WarpVec& v, int delta) {
  WarpVec r;
  for (int i = 0; i < kWarpSize; ++i) {
    const int src = i + delta;
    r[i] = src < kWarpSize ? v[src] : v[i];
  }
  return r;
}

enum class ReduceOp { kSum, kMax };

inline float apply(ReduceOp op, float a, float b) {
  return op == ReduceOp::kSum ? a + b : std::max(a, b);
}

// Butterfly all-reduce over the lanes of each vector in `vecs`, performed
// for all vectors *together* — this is the paper's warpAllReduceSum_XElem
// with X = vecs.size(). After the call every lane of vecs[k] holds the
// reduction of vecs[k]'s original 32 lanes.
//
// Cost model: 5 butterfly steps (mask 16, 8, 4, 2, 1). In each step the X
// shuffles are mutually independent, so they issue back-to-back and overlap
// latency (charge_batch); the X adds likewise. With X == 1 this degrades to
// the classical dependency chain of Figure 4 (full latency per step).
void warp_all_reduce(std::span<WarpVec> vecs, ReduceOp op, CycleCounter& cc);

// Classical single-array warp reduction: identical numerics to
// warp_all_reduce on one vector; provided so baseline kernels read like the
// FasterTransformer code they model.
void warp_reduce(WarpVec& v, ReduceOp op, CycleCounter& cc);

}  // namespace turbo::gpusim
