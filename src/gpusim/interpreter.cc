#include "gpusim/interpreter.h"

#include <algorithm>

#include "common/check.h"

namespace turbo::gpusim {

namespace {

struct InstrClass {
  double issue;
  double latency;
};

InstrClass class_of(Opcode op, const DeviceSpec& spec) {
  switch (op) {
    case Opcode::kFAdd:
    case Opcode::kFMul:
    case Opcode::kFMax:
      return {spec.alu_issue, spec.alu_latency};
    case Opcode::kShflXor:
    case Opcode::kShflDown:
      return {spec.shfl_issue, spec.shfl_latency};
    case Opcode::kMovImm:
      return {spec.alu_issue, 1.0};
  }
  return {1.0, 1.0};
}

}  // namespace

ProgramResult run_warp_program(const std::vector<Instr>& program,
                               std::vector<WarpVec> initial_registers,
                               const DeviceSpec& spec) {
  // Determine register-file size.
  int max_reg = static_cast<int>(initial_registers.size()) - 1;
  for (const auto& instr : program) {
    max_reg = std::max({max_reg, instr.dst, instr.src_a, instr.src_b});
  }
  std::vector<WarpVec> regs = std::move(initial_registers);
  regs.resize(static_cast<size_t>(max_reg) + 1, WarpVec::filled(0.0f));
  std::vector<double> ready(regs.size(), 0.0);  // scoreboard

  double next_issue = 0.0;
  double last_writeback = 0.0;
  for (const auto& instr : program) {
    const InstrClass cls = class_of(instr.op, spec);

    // Issue when the slot is free and the operands have been written back.
    double operands_ready = ready[static_cast<size_t>(instr.src_a)];
    if (instr.op == Opcode::kFAdd || instr.op == Opcode::kFMul ||
        instr.op == Opcode::kFMax) {
      operands_ready = std::max(operands_ready,
                                ready[static_cast<size_t>(instr.src_b)]);
    }
    if (instr.op == Opcode::kMovImm) operands_ready = 0.0;
    const double issue_at = std::max(next_issue, operands_ready);
    const double done_at = issue_at + cls.latency;
    next_issue = issue_at + cls.issue;
    ready[static_cast<size_t>(instr.dst)] = done_at;
    last_writeback = std::max(last_writeback, done_at);

    // Lane semantics.
    WarpVec& dst = regs[static_cast<size_t>(instr.dst)];
    const WarpVec& a = regs[static_cast<size_t>(instr.src_a)];
    const WarpVec& b = regs[static_cast<size_t>(instr.src_b)];
    switch (instr.op) {
      case Opcode::kFAdd:
        dst = a + b;
        break;
      case Opcode::kFMul:
        dst = a * b;
        break;
      case Opcode::kFMax:
        dst = lane_max(a, b);
        break;
      case Opcode::kShflXor:
        dst = shfl_xor(a, instr.imm);
        break;
      case Opcode::kShflDown:
        dst = shfl_down(a, instr.imm);
        break;
      case Opcode::kMovImm:
        dst = WarpVec::filled(instr.imm_value);
        break;
    }
  }

  ProgramResult result;
  result.cycles = last_writeback;
  result.registers = std::move(regs);
  result.instructions = static_cast<int>(program.size());
  return result;
}

std::vector<Instr> make_reduce_chain_program(int x) {
  TT_CHECK_GT(x, 0);
  // The classical kernel: rows reduced one after another, each step's FADD
  // waiting on its SHFL (Figure 4, top-right).
  std::vector<Instr> prog;
  const int tmp = x;  // one scratch register reused per step
  for (int r = 0; r < x; ++r) {
    for (int mask = kWarpSize / 2; mask > 0; mask >>= 1) {
      prog.push_back(Instr::shfl_xor(tmp, r, mask));
      prog.push_back(Instr::fadd(r, r, tmp));
    }
  }
  return prog;
}

std::vector<Instr> make_reduce_interleaved_program(int x) {
  TT_CHECK_GT(x, 0);
  // warpAllReduceSum_XElem: per butterfly step, all X shuffles issue
  // back-to-back into distinct scratch registers, then the X adds — no
  // instruction waits on the result of its immediate predecessor
  // (Figure 4, bottom-right).
  std::vector<Instr> prog;
  for (int mask = kWarpSize / 2; mask > 0; mask >>= 1) {
    for (int r = 0; r < x; ++r) {
      prog.push_back(Instr::shfl_xor(x + r, r, mask));
    }
    for (int r = 0; r < x; ++r) {
      prog.push_back(Instr::fadd(r, r, x + r));
    }
  }
  return prog;
}

}  // namespace turbo::gpusim
