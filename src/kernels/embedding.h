// Embedding front-end: token + position (+ optional segment) lookup
// followed by layernorm, as in BERT's embedding block.
#pragma once

#include <cstdint>

namespace turbo::kernels {

// out[b, s, :] = layernorm(word[ids[b, s]] + pos[s] (+ seg[seg_ids[b, s]]))
// ids: [batch, seq]; word: [vocab, hidden]; pos: [max_pos, hidden];
// seg/seg_ids may be null.
void embedding_lookup_layernorm(float* out, const int32_t* ids,
                                const float* word, const float* pos,
                                const float* seg, const int32_t* seg_ids,
                                const float* gamma, const float* beta,
                                int batch, int seq, int hidden, int vocab,
                                int max_pos, float eps = 1e-5f);

}  // namespace turbo::kernels
