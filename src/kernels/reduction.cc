#include "kernels/reduction.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace turbo::kernels {

void softmax_row(float* row, long n, float scale) {
  float max_v = -std::numeric_limits<float>::infinity();
  for (long c = 0; c < n; ++c) max_v = std::max(max_v, row[c] * scale);
  float sum = 0.0f;
  for (long c = 0; c < n; ++c) {
    row[c] = std::exp(row[c] * scale - max_v);
    sum += row[c];
  }
  const float inv = 1.0f / sum;
  for (long c = 0; c < n; ++c) row[c] *= inv;
}

void softmax_rows(float* data, long rows, long cols, float scale) {
#pragma omp parallel for schedule(static)
  for (long r = 0; r < rows; ++r) {
    softmax_row(data + r * cols, cols, scale);
  }
}

void attention_softmax(float* scores, int batch, int heads, long s_q,
                       long s_k, float scale, const int* valid_len) {
  const long rows_per_batch = static_cast<long>(heads) * s_q;
  // Validate masks up front: exceptions cannot propagate out of the
  // parallel region below.
  if (valid_len != nullptr) {
    for (int b = 0; b < batch; ++b) TT_CHECK_GT(valid_len[b], 0);
  }
#pragma omp parallel for collapse(2) schedule(static)
  for (int b = 0; b < batch; ++b) {
    for (long r = 0; r < rows_per_batch; ++r) {
      float* row = scores + (b * rows_per_batch + r) * s_k;
      const long valid = valid_len ? std::min<long>(valid_len[b], s_k) : s_k;
      float max_v = -std::numeric_limits<float>::infinity();
      for (long c = 0; c < valid; ++c) max_v = std::max(max_v, row[c] * scale);
      float sum = 0.0f;
      for (long c = 0; c < valid; ++c) {
        row[c] = std::exp(row[c] * scale - max_v);
        sum += row[c];
      }
      const float inv = 1.0f / sum;
      for (long c = 0; c < valid; ++c) row[c] *= inv;
      // Masked keys get exactly zero weight.
      for (long c = valid; c < s_k; ++c) row[c] = 0.0f;
    }
  }
}

void layernorm(float* out, const float* in, const float* gamma,
               const float* beta, long rows, long cols, float eps) {
#pragma omp parallel for schedule(static)
  for (long r = 0; r < rows; ++r) {
    const float* x = in + r * cols;
    float* y = out + r * cols;
    double sum = 0.0, sq = 0.0;
    for (long c = 0; c < cols; ++c) {
      sum += x[c];
      sq += static_cast<double>(x[c]) * x[c];
    }
    const double mean = sum / static_cast<double>(cols);
    const double var = sq / static_cast<double>(cols) - mean * mean;
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    for (long c = 0; c < cols; ++c) {
      y[c] = gamma[c] * (static_cast<float>(x[c] - mean) * inv_std) + beta[c];
    }
  }
}

void add_bias_layernorm(float* out, const float* x, const float* residual,
                        const float* bias, const float* gamma,
                        const float* beta, long rows, long cols, float eps) {
#pragma omp parallel for schedule(static)
  for (long r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    const float* res = residual + r * cols;
    float* y = out + r * cols;
    double sum = 0.0, sq = 0.0;
    // First pass materializes x + bias + residual into the output row, so
    // the reduction and normalize passes read the combined value.
    for (long c = 0; c < cols; ++c) {
      const float v = xr[c] + (bias ? bias[c] : 0.0f) + res[c];
      y[c] = v;
      sum += v;
      sq += static_cast<double>(v) * v;
    }
    const double mean = sum / static_cast<double>(cols);
    const double var = sq / static_cast<double>(cols) - mean * mean;
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    for (long c = 0; c < cols; ++c) {
      y[c] = gamma[c] * (static_cast<float>(y[c] - mean) * inv_std) + beta[c];
    }
  }
}

}  // namespace turbo::kernels
