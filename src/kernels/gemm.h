// CPU GEMM kernels standing in for cuBLAS.
//
// Row-major single precision. The optimized path is blocked over M/K with
// OpenMP across row blocks and a vectorizable inner loop; gemm_ref is the
// naive triple loop used as the test oracle. Numerics here are exact; GPU
// *timing* for GEMMs comes from the roofline in src/perfmodel.
#pragma once

namespace turbo::kernels {

// C[m,n] = alpha * A[m,k] x op(B) + beta * C, op(B) = B[k,n] or
// transposed B[n,k] when trans_b.
void gemm(const float* a, const float* b, float* c, int m, int n, int k,
          bool trans_b = false, float alpha = 1.0f, float beta = 0.0f);

// Reference implementation (naive, single-threaded).
void gemm_ref(const float* a, const float* b, float* c, int m, int n, int k,
              bool trans_b = false, float alpha = 1.0f, float beta = 0.0f);

// Strided batched GEMM (cublasGemmStridedBatched): `batch` independent
// GEMMs whose A/B/C start `stride_* ` floats apart.
void batched_gemm(const float* a, const float* b, float* c, int batch, int m,
                  int n, int k, long stride_a, long stride_b, long stride_c,
                  bool trans_b = false, float alpha = 1.0f, float beta = 0.0f);

}  // namespace turbo::kernels
