// IEEE binary16 conversion and fp16-accumulated GEMM emulation.
//
// The Turbo-TC configuration runs GEMMs on tensor cores, which consume fp16
// operands (fp32 accumulation). The paper states this "introduces minimal
// and acceptable precision loss" versus FP32 — these helpers let the test
// suite and the precision benchmark quantify that loss: operands are
// rounded through binary16 before an fp32-accumulated GEMM, exactly the
// numeric contract of mma.sync.
#pragma once

#include <cstdint>

namespace turbo::kernels {

// Round-to-nearest-even conversion to IEEE binary16, returned as the bit
// pattern. Handles subnormals, infinities and NaN.
uint16_t fp32_to_fp16_bits(float value);

// Exact widening conversion from binary16 bits.
float fp16_bits_to_fp32(uint16_t bits);

// Convenience: round an fp32 value through fp16 precision.
inline float round_to_fp16(float value) {
  return fp16_bits_to_fp32(fp32_to_fp16_bits(value));
}

// In-place rounding of a buffer through fp16.
void round_buffer_to_fp16(float* data, long n);

// C = A x op(B) with both operands rounded to fp16 and fp32 accumulation
// (tensor-core numeric contract). Shapes as kernels::gemm.
void gemm_fp16(const float* a, const float* b, float* c, int m, int n, int k,
               bool trans_b = false);

}  // namespace turbo::kernels
