#include "kernels/paged_attention.h"

namespace turbo::kernels {

namespace {

// Below this many (row, head) cells the OpenMP fork costs more than the
// kernel: short contexts, cross-attention over small sources, and the
// tiny-model unit tests all stay serial.
constexpr long kParallelCells = 2048;

}  // namespace

void paged_qk_dot(const float* q, const KvSpan* spans, int num_spans,
                  long count, long row_stride, int heads, int d,
                  float* scores) {
  // Row-major within a span: each K row is streamed exactly once, every
  // head's dot reading its d-strip while the row is hot. Each (head, row)
  // score keeps one scalar accumulator over ascending features —
  // bit-identical to the head-major reference — and scores are
  // independent, so spans split freely across threads. The prefix
  // recomputation per span is noise next to the rows themselves.
#pragma omp parallel for schedule(static) \
    if (num_spans > 1 && count * heads >= kParallelCells)
  for (int s = 0; s < num_spans; ++s) {
    long base = 0;
    for (int j = 0; j < s; ++j) base += spans[j].rows;
    const KvSpan& span = spans[s];
    // Four rows at a time with one independent accumulator each: the
    // feature loop stays ascending per score (bit-identical to the scalar
    // reference) while the four chains hide FMA latency — ILP the per-row
    // gather path cannot get, since it sees one row pointer at a time.
    int i = 0;
    for (; i + 4 <= span.rows; i += 4) {
      const float* r0 = span.k + static_cast<long>(i) * row_stride;
      const float* r1 = r0 + row_stride;
      const float* r2 = r1 + row_stride;
      const float* r3 = r2 + row_stride;
      for (int h = 0; h < heads; ++h) {
        const long off = static_cast<long>(h) * d;
        const float* qh = q + off;
        float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
        for (int dd = 0; dd < d; ++dd) {
          const float qv = qh[dd];
          a0 += qv * r0[off + dd];
          a1 += qv * r1[off + dd];
          a2 += qv * r2[off + dd];
          a3 += qv * r3[off + dd];
        }
        float* sh = scores + h * count + base + i;
        sh[0] = a0;
        sh[1] = a1;
        sh[2] = a2;
        sh[3] = a3;
      }
    }
    for (; i < span.rows; ++i) {
      const float* r = span.k + static_cast<long>(i) * row_stride;
      for (int h = 0; h < heads; ++h) {
        const float* qh = q + static_cast<long>(h) * d;
        const float* rh = r + static_cast<long>(h) * d;
        float acc = 0.0f;
        for (int dd = 0; dd < d; ++dd) acc += qh[dd] * rh[dd];
        scores[h * count + base + i] = acc;
      }
    }
  }
}

void paged_av_accumulate(const float* probs, const KvSpan* spans,
                         int num_spans, long count, long row_stride,
                         int heads, int d, float* out) {
  // Every output lane (h, dd) accumulates its rows in ascending position
  // order — the running sum's rounding matches the head-major reference
  // exactly. Large extents split by head: disjoint out lanes, disjoint V
  // strips, each lane's order untouched, so still bit-identical.
  if (count * heads >= kParallelCells) {
#pragma omp parallel for schedule(static)
    for (int h = 0; h < heads; ++h) {
      const float* ph = probs + static_cast<long>(h) * count;
      const long off = static_cast<long>(h) * d;
      float* oh = out + off;
      long pos = 0;
      for (int s = 0; s < num_spans; ++s) {
        for (int i = 0; i < spans[s].rows; ++i) {
          const float p = ph[pos + i];
          const float* rh =
              spans[s].v + static_cast<long>(i) * row_stride + off;
          for (int dd = 0; dd < d; ++dd) oh[dd] += p * rh[dd];
        }
        pos += spans[s].rows;
      }
    }
    return;
  }
  // Serial: row-major, each V row streamed once past all heads. Rows are
  // grouped in fours per lane with a register accumulator — the four
  // updates apply in the same ascending order as the reference's one-row-
  // at-a-time stores, so every lane's running sum rounds identically.
  long pos = 0;
  for (int s = 0; s < num_spans; ++s) {
    const KvSpan& span = spans[s];
    int i = 0;
    for (; i + 4 <= span.rows; i += 4) {
      const float* r0 = span.v + static_cast<long>(i) * row_stride;
      const float* r1 = r0 + row_stride;
      const float* r2 = r1 + row_stride;
      const float* r3 = r2 + row_stride;
      for (int h = 0; h < heads; ++h) {
        const long off = static_cast<long>(h) * d;
        const float* ph = probs + h * count + pos + i;
        const float p0 = ph[0], p1 = ph[1], p2 = ph[2], p3 = ph[3];
        float* oh = out + off;
        for (int dd = 0; dd < d; ++dd) {
          float acc = oh[dd];
          acc += p0 * r0[off + dd];
          acc += p1 * r1[off + dd];
          acc += p2 * r2[off + dd];
          acc += p3 * r3[off + dd];
          oh[dd] = acc;
        }
      }
    }
    for (; i < span.rows; ++i) {
      const float* r = span.v + static_cast<long>(i) * row_stride;
      for (int h = 0; h < heads; ++h) {
        const float p = probs[h * count + pos + i];
        const float* rh = r + static_cast<long>(h) * d;
        float* oh = out + static_cast<long>(h) * d;
        for (int dd = 0; dd < d; ++dd) oh[dd] += p * rh[dd];
      }
    }
    pos += span.rows;
  }
}

}  // namespace turbo::kernels
