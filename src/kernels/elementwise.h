// Element-wise and layout kernels (the "embarrassingly parallel" class of
// paper §4.1.1), including the fused variants TurboTransformers adds:
// combined add-bias + activation and the split/transpose kernels that have
// no cuDNN equivalent.
//
// Layout conventions (all row-major):
//   activations  [B, S, H]          H = heads * head_dim
//   per-head     [B, heads, S, d]
//   packed QKV   [B, S, 3, H]       (projection weight packed [H, 3H])
#pragma once

namespace turbo::kernels {

// data[r, c] += bias[c]
void add_bias(float* data, const float* bias, long rows, long cols);

// GELU (tanh approximation, as in BERT).
float gelu_scalar(float x);
void gelu(float* data, long n);

// Fused: data[r, c] = gelu(data[r, c] + bias[c])
void add_bias_gelu(float* data, const float* bias, long rows, long cols);

// x[i] += residual[i]
void add_residual(float* x, const float* residual, long n);

// Packed QKV [B, S, 3, H] + packed bias [3, H] -> three [B, heads, S, d]
// tensors. The fused replacement for three bias-adds and three transposes.
void split_add_bias_transpose(const float* qkv, const float* bias, float* q,
                              float* k, float* v, int batch, int seq,
                              int heads, int head_dim);

// [B, S, H] + bias[H] -> [B, heads, S, d]  (unfused pipeline's per-tensor
// transpose; bias pass kept separate in the unfused path).
void transpose_to_heads(const float* in, float* out, int batch, int seq,
                        int heads, int head_dim);

// [B, heads, S, d] -> [B, S, H]  (context re-layout after attention).
void transpose_for_score(const float* in, float* out, int batch, int seq,
                         int heads, int head_dim);

}  // namespace turbo::kernels
