#include "kernels/embedding.h"

#include "common/check.h"
#include "kernels/reduction.h"

namespace turbo::kernels {

void embedding_lookup_layernorm(float* out, const int32_t* ids,
                                const float* word, const float* pos,
                                const float* seg, const int32_t* seg_ids,
                                const float* gamma, const float* beta,
                                int batch, int seq, int hidden, int vocab,
                                int max_pos, float eps) {
  TT_CHECK_LE(seq, max_pos);
  // Validate ids up front: exceptions cannot propagate out of the parallel
  // region below.
  for (long i = 0; i < static_cast<long>(batch) * seq; ++i) {
    TT_CHECK_GE(ids[i], 0);
    TT_CHECK_LT(ids[i], vocab);
  }
#pragma omp parallel for collapse(2) schedule(static)
  for (int b = 0; b < batch; ++b) {
    for (int s = 0; s < seq; ++s) {
      const long row = static_cast<long>(b) * seq + s;
      const int32_t id = ids[row];
      const float* w = word + static_cast<long>(id) * hidden;
      const float* p = pos + static_cast<long>(s) * hidden;
      const float* g = nullptr;
      if (seg != nullptr && seg_ids != nullptr) {
        g = seg + static_cast<long>(seg_ids[row]) * hidden;
      }
      float* dst = out + row * hidden;
      for (int h = 0; h < hidden; ++h) {
        dst[h] = w[h] + p[h] + (g ? g[h] : 0.0f);
      }
    }
  }
  layernorm(out, out, gamma, beta, static_cast<long>(batch) * seq, hidden,
            eps);
}

}  // namespace turbo::kernels
