// Span-based attention kernels for paged (block-iterating) decode.
//
// The decoder's fused single-step attention walks a sequence's K/V history.
// When that history lives in pool blocks (genserve::KvCachePool), the rows
// of one block are contiguous hidden-strided strips, so the inner loop can
// run over [ptr, rows] extents instead of gathering one row pointer per
// token — and each row can be streamed through the cache hierarchy exactly
// once, every head consuming its strip on the way through. The per-row
// reference path iterates head-major instead, touching every K and V row
// once per head.
//
// Bit-exactness contract: both kernels perform *exactly* the arithmetic of
// the per-row reference path, per head, in the same order — each (head,
// row) score is one scalar accumulator over ascending feature index, and
// each output lane accumulates its weighted V rows in ascending position
// order. Only the loop nest (row-major vs head-major) and the work split
// across threads differ; no operation moves within any accumulation chain,
// so decode results are bit-identical to the row-pointer path on any cache
// layout, serial or parallel.
#pragma once

namespace turbo::kernels {

// One contiguous extent of K/V rows. Covers `rows` consecutive token
// positions of one layer; row r's K strip starts at k + r * row_stride and
// its V strip at v + r * row_stride (row_stride = heads * head_dim, the
// cache's hidden size). A pool block yields one span; a dense cache yields
// a single span covering everything.
struct KvSpan {
  const float* k = nullptr;
  const float* v = nullptr;
  int rows = 0;
};

// Attention scores over an extent list totalling `count` rows, all heads:
//   scores[h * count + pos(s, i)] = dot(q[h*d .. h*d+d),
//                                       spans[s].k[i * row_stride + h*d ..])
// where pos(s, i) numbers rows in span order. Large extents split across
// threads (every score is an independent chain).
void paged_qk_dot(const float* q, const KvSpan* spans, int num_spans,
                  long count, long row_stride, int heads, int d,
                  float* scores);

// Weighted-value accumulation over the same extent list:
//   out[h*d + dd] += probs[h * count + pos] * spans[s].v[i*row_stride + h*d + dd]
// applied in ascending pos order per output lane (part of the contract
// above; the parallel split is by head, which keeps each lane's order).
// `out` must hold heads * d floats, pre-initialized by the caller.
void paged_av_accumulate(const float* probs, const KvSpan* spans,
                         int num_spans, long count, long row_stride,
                         int heads, int d, float* out);

}  // namespace turbo::kernels
