#include "kernels/fp16.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "kernels/gemm.h"

namespace turbo::kernels {

uint16_t fp32_to_fp16_bits(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const int32_t exp = static_cast<int32_t>((bits >> 23) & 0xffu) - 127 + 15;
  uint32_t mant = bits & 0x7fffffu;

  if (exp >= 0x1f) {
    // Overflow to infinity; preserve NaN payload bit.
    const bool is_nan = ((bits >> 23) & 0xffu) == 0xffu && mant != 0;
    return static_cast<uint16_t>(sign | 0x7c00u | (is_nan ? 0x200u : 0u));
  }
  if (exp <= 0) {
    if (exp < -10) return static_cast<uint16_t>(sign);  // underflow to zero
    // Subnormal: shift in the implicit bit, round to nearest even.
    mant |= 0x800000u;
    const int shift = 14 - exp;
    const uint32_t rounded = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1);
    const uint32_t half = 1u << (shift - 1);
    uint32_t result = rounded;
    if (rem > half || (rem == half && (rounded & 1u))) ++result;
    return static_cast<uint16_t>(sign | result);
  }
  // Normal: round the 23-bit mantissa to 10 bits, nearest even.
  uint32_t result = (static_cast<uint32_t>(exp) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (result & 1u))) ++result;
  return static_cast<uint16_t>(sign | result);
}

float fp16_bits_to_fp32(uint16_t bits) {
  const uint32_t sign = (static_cast<uint32_t>(bits) & 0x8000u) << 16;
  const uint32_t exp = (bits >> 10) & 0x1fu;
  const uint32_t mant = bits & 0x3ffu;
  uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      out = sign | ((127 - 15 - e) << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1f) {
    out = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float value;
  std::memcpy(&value, &out, sizeof(value));
  return value;
}

void round_buffer_to_fp16(float* data, long n) {
#pragma omp parallel for schedule(static)
  for (long i = 0; i < n; ++i) data[i] = round_to_fp16(data[i]);
}

void gemm_fp16(const float* a, const float* b, float* c, int m, int n, int k,
               bool trans_b) {
  std::vector<float> a16(a, a + static_cast<long>(m) * k);
  std::vector<float> b16(b, b + (trans_b ? static_cast<long>(n) * k
                                         : static_cast<long>(k) * n));
  round_buffer_to_fp16(a16.data(), static_cast<long>(a16.size()));
  round_buffer_to_fp16(b16.data(), static_cast<long>(b16.size()));
  gemm(a16.data(), b16.data(), c, m, n, k, trans_b);
}

}  // namespace turbo::kernels
