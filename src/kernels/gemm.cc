#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace turbo::kernels {

namespace {
constexpr int kBlockM = 64;
constexpr int kBlockK = 256;
}  // namespace

void gemm_ref(const float* a, const float* b, float* c, int m, int n, int k,
              bool trans_b, float alpha, float beta) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        const float bv = trans_b ? b[static_cast<long>(j) * k + kk]
                                 : b[static_cast<long>(kk) * n + j];
        acc += static_cast<double>(a[static_cast<long>(i) * k + kk]) * bv;
      }
      float* out = &c[static_cast<long>(i) * n + j];
      *out = alpha * static_cast<float>(acc) + beta * *out;
    }
  }
}

void gemm(const float* a, const float* b, float* c, int m, int n, int k,
          bool trans_b, float alpha, float beta) {
  TT_CHECK_GE(m, 0);
  TT_CHECK_GE(n, 0);
  TT_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;

  // Scale / clear C once, then accumulate panels.
#pragma omp parallel for schedule(static)
  for (int i = 0; i < m; ++i) {
    float* row = &c[static_cast<long>(i) * n];
    if (beta == 0.0f) {
      std::memset(row, 0, static_cast<size_t>(n) * sizeof(float));
    } else if (beta != 1.0f) {
      for (int j = 0; j < n; ++j) row[j] *= beta;
    }
  }

  if (!trans_b) {
    // i-k-j loops: the j inner loop streams B and C rows (vectorizes).
#pragma omp parallel for schedule(static)
    for (int i0 = 0; i0 < m; i0 += kBlockM) {
      const int i1 = std::min(m, i0 + kBlockM);
      for (int k0 = 0; k0 < k; k0 += kBlockK) {
        const int k1 = std::min(k, k0 + kBlockK);
        for (int i = i0; i < i1; ++i) {
          float* crow = &c[static_cast<long>(i) * n];
          for (int kk = k0; kk < k1; ++kk) {
            const float av = alpha * a[static_cast<long>(i) * k + kk];
            const float* brow = &b[static_cast<long>(kk) * n];
            for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  } else {
    // C[i,j] = dot(A row i, B row j): contiguous in both operands.
#pragma omp parallel for schedule(static)
    for (int i = 0; i < m; ++i) {
      const float* arow = &a[static_cast<long>(i) * k];
      float* crow = &c[static_cast<long>(i) * n];
      for (int j = 0; j < n; ++j) {
        const float* brow = &b[static_cast<long>(j) * k];
        float acc = 0.0f;
        for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] += alpha * acc;
      }
    }
  }
}

void batched_gemm(const float* a, const float* b, float* c, int batch, int m,
                  int n, int k, long stride_a, long stride_b, long stride_c,
                  bool trans_b, float alpha, float beta) {
  TT_CHECK_GE(batch, 0);
  for (int i = 0; i < batch; ++i) {
    gemm(a + static_cast<long>(i) * stride_a,
         b + static_cast<long>(i) * stride_b,
         c + static_cast<long>(i) * stride_c, m, n, k, trans_b, alpha, beta);
  }
}

}  // namespace turbo::kernels
