#include "kernels/elementwise.h"

#include <cmath>

namespace turbo::kernels {

void add_bias(float* data, const float* bias, long rows, long cols) {
#pragma omp parallel for schedule(static)
  for (long r = 0; r < rows; ++r) {
    float* row = data + r * cols;
    for (long c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

float gelu_scalar(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  return 0.5f * x *
         (1.0f + std::tanh(kSqrt2OverPi * (x + 0.044715f * x * x * x)));
}

void gelu(float* data, long n) {
#pragma omp parallel for schedule(static)
  for (long i = 0; i < n; ++i) data[i] = gelu_scalar(data[i]);
}

void add_bias_gelu(float* data, const float* bias, long rows, long cols) {
#pragma omp parallel for schedule(static)
  for (long r = 0; r < rows; ++r) {
    float* row = data + r * cols;
    for (long c = 0; c < cols; ++c) row[c] = gelu_scalar(row[c] + bias[c]);
  }
}

void add_residual(float* x, const float* residual, long n) {
#pragma omp parallel for schedule(static)
  for (long i = 0; i < n; ++i) x[i] += residual[i];
}

void split_add_bias_transpose(const float* qkv, const float* bias, float* q,
                              float* k, float* v, int batch, int seq,
                              int heads, int head_dim) {
  const long hidden = static_cast<long>(heads) * head_dim;
  float* outs[3] = {q, k, v};
#pragma omp parallel for collapse(2) schedule(static)
  for (int b = 0; b < batch; ++b) {
    for (int s = 0; s < seq; ++s) {
      const float* src = qkv + ((static_cast<long>(b) * seq + s) * 3) * hidden;
      for (int which = 0; which < 3; ++which) {
        const float* plane = src + which * hidden;
        const float* bias_plane = bias + which * hidden;
        for (int h = 0; h < heads; ++h) {
          float* dst = outs[which] +
                       ((static_cast<long>(b) * heads + h) * seq + s) *
                           head_dim;
          const long off = static_cast<long>(h) * head_dim;
          for (int d = 0; d < head_dim; ++d) {
            dst[d] = plane[off + d] + bias_plane[off + d];
          }
        }
      }
    }
  }
}

void transpose_to_heads(const float* in, float* out, int batch, int seq,
                        int heads, int head_dim) {
  const long hidden = static_cast<long>(heads) * head_dim;
#pragma omp parallel for collapse(2) schedule(static)
  for (int b = 0; b < batch; ++b) {
    for (int s = 0; s < seq; ++s) {
      const float* src = in + (static_cast<long>(b) * seq + s) * hidden;
      for (int h = 0; h < heads; ++h) {
        float* dst = out + ((static_cast<long>(b) * heads + h) * seq + s) *
                               head_dim;
        const long off = static_cast<long>(h) * head_dim;
        for (int d = 0; d < head_dim; ++d) dst[d] = src[off + d];
      }
    }
  }
}

void transpose_for_score(const float* in, float* out, int batch, int seq,
                         int heads, int head_dim) {
  const long hidden = static_cast<long>(heads) * head_dim;
#pragma omp parallel for collapse(2) schedule(static)
  for (int b = 0; b < batch; ++b) {
    for (int s = 0; s < seq; ++s) {
      float* dst = out + (static_cast<long>(b) * seq + s) * hidden;
      for (int h = 0; h < heads; ++h) {
        const float* src = in +
                           ((static_cast<long>(b) * heads + h) * seq + s) *
                               head_dim;
        const long off = static_cast<long>(h) * head_dim;
        for (int d = 0; d < head_dim; ++d) dst[off + d] = src[d];
      }
    }
  }
}

}  // namespace turbo::kernels
