// Batch-reduction kernels: Softmax and LayerNorm (CPU numerics).
//
// These are the reference semantics for the GPU-simulated kernels in
// src/gpukernels and the math the models execute. Masked softmax follows
// the paper's ApplyMaskAndSoftmax: padded key positions contribute -inf
// before the row softmax, which is how zero-padded batches stay correct.
#pragma once

namespace turbo::kernels {

// Numerically stable softmax over one row of n floats, in place. `scale`
// multiplies logits first (1/sqrt(d) attention scaling). The single-row
// primitive softmax_rows applies per row — callers on serial hot paths
// (decoder attention) use it directly to skip the parallel region.
void softmax_row(float* row, long n, float scale = 1.0f);

// Numerically stable softmax over each row of data[rows, cols], in place.
// `scale` multiplies logits first (1/sqrt(d) attention scaling).
void softmax_rows(float* data, long rows, long cols, float scale = 1.0f);

// Attention softmax over scores [B, heads, S_q, S_k] with per-batch valid
// key lengths: for batch b, columns >= valid_len[b] are masked to -inf.
// valid_len may be null (no padding).
void attention_softmax(float* scores, int batch, int heads, long s_q,
                       long s_k, float scale, const int* valid_len);

// out[r, :] = gamma * (in[r, :] - mean) / sqrt(var + eps) + beta.
// in == out is allowed.
void layernorm(float* out, const float* in, const float* gamma,
               const float* beta, long rows, long cols, float eps = 1e-5f);

// Fused: y = layernorm(x + bias + residual). x, residual: [rows, cols];
// bias may be null. out == x is allowed.
void add_bias_layernorm(float* out, const float* x, const float* residual,
                        const float* bias, const float* gamma,
                        const float* beta, long rows, long cols,
                        float eps = 1e-5f);

}  // namespace turbo::kernels
