#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "gpukernels/block_reduce.h"
#include "gpukernels/reduction_sim.h"
#include "gpusim/block.h"
#include "kernels/reduction.h"

namespace turbo::gpukernels {

using gpusim::BlockSim;
using gpusim::DeviceSpec;
using gpusim::ReduceOp;
using gpusim::WarpVec;
using gpusim::kWarpSize;

namespace {

constexpr int kThreads = 128;
constexpr float kNegInf = -std::numeric_limits<float>::infinity();

const char* kImplNames[] = {"baseline", "cudnn", "turbo"};

// Strided per-thread accumulation over one row: thread t reduces elements
// t, t + threads, ... after applying `transform`. Returns the per-warp lane
// partials. Numerics only — the caller charges the pass.
RowPartials strided_partials(const float* row, long cols, int threads,
                             ReduceOp op, float identity,
                             float (*transform)(float, float, float),
                             float arg0, float arg1) {
  const int num_warps = threads / kWarpSize;
  RowPartials partials(static_cast<size_t>(num_warps),
                       WarpVec::filled(identity));
  for (long c = 0; c < cols; ++c) {
    const int thread = static_cast<int>(c % threads);
    const int w = thread / kWarpSize;
    const int lane = thread % kWarpSize;
    float& acc = partials[static_cast<size_t>(w)][lane];
    acc = gpusim::apply(op, acc, transform(row[c], arg0, arg1));
  }
  return partials;
}

float xf_scale(float v, float scale, float) { return v * scale; }
float xf_exp(float v, float scale, float max_v) {
  return std::exp(v * scale - max_v);
}

// Shared-memory tree reduction of all thread partials (the generic-library
// kernel shape): log2(threads) smem levels, each with a barrier.
float tree_reduce(BlockSim& block, const RowPartials& partials, ReduceOp op,
                  float identity) {
  std::vector<float> vals(static_cast<size_t>(kThreads), identity);
  for (int w = 0; w < block.num_warps(); ++w) {
    for (int l = 0; l < kWarpSize; ++l) {
      vals[static_cast<size_t>(w * kWarpSize + l)] =
          partials[static_cast<size_t>(w)][l];
    }
  }
  block.cycles().charge_smem_batch(1);  // spill partials to smem
  block.sync();
  for (int stride = kThreads / 2; stride > 0; stride >>= 1) {
    for (int t = 0; t < stride; ++t) {
      vals[static_cast<size_t>(t)] = gpusim::apply(
          op, vals[static_cast<size_t>(t)],
          vals[static_cast<size_t>(t + stride)]);
    }
    block.cycles().charge_smem_batch(2);  // read partner + write back
    block.cycles().charge_alu_batch(1);
    block.sync();
  }
  return vals[0];
}

struct GroupSim {
  double cycles = 0;
  std::vector<std::vector<float>> out_rows;  // empty in cost-only mode
};

// Simulates one group of `x` rows through the full kernel, returning the
// critical-path cycles and (when row_data is provided) the output rows.
GroupSim simulate_group(const DeviceSpec& spec, ReductionImpl impl, int x,
                        long cols, float scale,
                        const std::vector<const float*>& row_data,
                        long smem_bytes) {
  BlockSim block(spec, kThreads, smem_bytes);
  const long iters = (cols + kThreads - 1) / kThreads;
  const bool boundary = cols % kThreads != 0;
  const double row_bytes = static_cast<double>(cols) * sizeof(float);

  // Synthetic input in cost-only mode (values never affect cycle charges).
  std::vector<std::vector<float>> synth;
  std::vector<const float*> rows = row_data;
  if (rows.empty()) {
    synth.assign(static_cast<size_t>(x),
                 std::vector<float>(static_cast<size_t>(cols)));
    for (int r = 0; r < x; ++r) {
      for (long c = 0; c < cols; ++c) {
        synth[static_cast<size_t>(r)][static_cast<size_t>(c)] =
            0.01f * static_cast<float>((r + c) % 7);
      }
    }
    for (auto& s : synth) rows.push_back(s.data());
  }

  // The hand-written kernels (baseline and turbo) stage the row in
  // registers on the first pass (cols/threads values per thread), so later
  // passes are register-resident; the generic-library kernel re-streams
  // global memory every pass.
  const bool register_cached = impl != ReductionImpl::kCudnn;

  // cuDNN stand-in applies the logit scale as a separate unfused pass.
  if (impl == ReductionImpl::kCudnn) {
    block.cycles().charge_gmem_stream(2.0 * x * row_bytes);
    block.cycles().charge_alu_batch(static_cast<int>(x * iters));
  }

  // ---- Pass 1: row maxima ----
  block.cycles().charge_gmem_stream(static_cast<double>(x) * row_bytes);
  block.cycles().charge_alu_batch(static_cast<int>(2 * x * iters));
  if (boundary) block.cycles().charge_divergence();

  std::vector<RowPartials> max_partials;
  for (int r = 0; r < x; ++r) {
    max_partials.push_back(strided_partials(rows[static_cast<size_t>(r)],
                                            cols, kThreads, ReduceOp::kMax,
                                            kNegInf, xf_scale, scale, 0.0f));
  }
  std::vector<float> maxes;
  if (impl == ReductionImpl::kCudnn) {
    for (auto& p : max_partials) {
      maxes.push_back(tree_reduce(block, p, ReduceOp::kMax, kNegInf));
    }
  } else {
    maxes = block_reduce_xelem(block, max_partials, ReduceOp::kMax, kNegInf);
  }

  // ---- Pass 2: exp and row sums ----
  if (!register_cached) {
    block.cycles().charge_gmem_stream(2.0 * x * row_bytes);  // re-read + stage
  }
  block.cycles().charge_sfu_batch(static_cast<int>(x * iters));
  block.cycles().charge_alu_batch(static_cast<int>(2 * x * iters));
  if (boundary) block.cycles().charge_divergence();

  std::vector<std::vector<float>> exps(static_cast<size_t>(x));
  std::vector<RowPartials> sum_partials;
  for (int r = 0; r < x; ++r) {
    const float* row = rows[static_cast<size_t>(r)];
    auto& e = exps[static_cast<size_t>(r)];
    e.resize(static_cast<size_t>(cols));
    for (long c = 0; c < cols; ++c) {
      e[static_cast<size_t>(c)] =
          xf_exp(row[c], scale, maxes[static_cast<size_t>(r)]);
    }
    sum_partials.push_back(strided_partials(e.data(), cols, kThreads,
                                            ReduceOp::kSum, 0.0f,
                                            [](float v, float, float) {
                                              return v;
                                            },
                                            0.0f, 0.0f));
  }
  std::vector<float> sums;
  if (impl == ReductionImpl::kCudnn) {
    for (auto& p : sum_partials) {
      sums.push_back(tree_reduce(block, p, ReduceOp::kSum, 0.0f));
    }
  } else {
    sums = block_reduce_xelem(block, sum_partials, ReduceOp::kSum, 0.0f);
  }

  // ---- Pass 3: normalize + store ----
  block.cycles().charge_gmem_stream(
      (register_cached ? 1.0 : 2.0) * x * row_bytes);
  block.cycles().charge_sfu_batch(x);  // one reciprocal per row
  block.cycles().charge_alu_batch(static_cast<int>(x * iters));
  if (boundary) block.cycles().charge_divergence();

  GroupSim result;
  result.cycles = block.cycles().cycles();
  if (!row_data.empty()) {
    for (int r = 0; r < x; ++r) {
      auto& e = exps[static_cast<size_t>(r)];
      const float inv = 1.0f / sums[static_cast<size_t>(r)];
      for (auto& v : e) v *= inv;
      result.out_rows.push_back(std::move(e));
    }
  }
  return result;
}

}  // namespace

const char* reduction_impl_name(ReductionImpl impl) {
  return kImplNames[static_cast<int>(impl)];
}

SimKernelResult softmax_sim(float* data, long rows, long cols, float scale,
                            ReductionImpl impl, const DeviceSpec& spec,
                            int x_elem) {
  TT_CHECK_GT(rows, 0);
  TT_CHECK_GT(cols, 0);
  TT_CHECK_GE(x_elem, 1);

  const int x = impl == ReductionImpl::kTurbo ? x_elem : 1;
  const int num_warps = kThreads / kWarpSize;
  const long smem_bytes =
      impl == ReductionImpl::kCudnn
          ? kThreads * static_cast<long>(sizeof(float))
          : static_cast<long>(x) * num_warps * static_cast<long>(sizeof(float));

  // Simulate the first group lane-accurately (real data when available).
  const int first_group_rows = static_cast<int>(std::min<long>(x, rows));
  std::vector<const float*> first_rows;
  if (data != nullptr) {
    for (int r = 0; r < first_group_rows; ++r) first_rows.push_back(data + r * cols);
  }
  GroupSim group = simulate_group(spec, impl, first_group_rows, cols, scale,
                                  first_rows, smem_bytes);

  // Grid: one block per row group up to full device occupancy; larger
  // workloads loop groups inside each block.
  const long groups_total = (rows + x - 1) / x;
  const int concurrent =
      spec.num_sms * gpusim::occupancy_blocks_per_sm(spec, kThreads,
                                                     smem_bytes);
  const int grid = static_cast<int>(std::min<long>(groups_total, concurrent));
  const long groups_per_block = (groups_total + grid - 1) / grid;
  const double block_cycles =
      group.cycles * static_cast<double>(groups_per_block);

  SimKernelResult result;
  result.rows = rows;
  result.cols = cols;
  result.launch = gpusim::launch_time(spec, grid, kThreads, smem_bytes,
                                      block_cycles);
  result.time_us = result.launch.time_us;

  if (data != nullptr) {
    // Bulk numerics via the CPU fast path, then cross-check the simulated
    // first group against it: the lane-level reduction tree must agree.
    kernels::softmax_rows(data, rows, cols, scale);
    for (int r = 0; r < first_group_rows; ++r) {
      for (long c = 0; c < cols; ++c) {
        const float simulated =
            group.out_rows[static_cast<size_t>(r)][static_cast<size_t>(c)];
        const float reference = data[r * cols + c];
        TT_CHECK_MSG(std::abs(simulated - reference) <= 1e-4f,
                     "softmax sim/reference divergence at row "
                         << r << " col " << c << ": " << simulated << " vs "
                         << reference);
      }
    }
  }
  return result;
}

}  // namespace turbo::gpukernels
