// Block-level batch reduction on the GPU simulator.
//
// This is the kernel structure of the paper's Figure 4:
//
//   classical (FasterTransformer, X = 1): each row is reduced in two passes
//   — a per-warp warpReduce of thread partials, a shared-memory round trip,
//   a barrier, a second warpReduce over the per-warp partials, and another
//   barrier to broadcast the result;
//
//   blockReduceSum_XElem (TurboTransformers): X rows share ONE pass — their
//   warpReduces interleave (independent shuffle chains pipeline in the
//   issue model), X rows' partials cross shared memory together, and one
//   barrier serves all X rows, cutting synchronization cost by (X-1)/X.
//
// The numerics are executed for real on WarpVec lanes so the reduction tree
// is bit-faithful; costs are charged to the block's CycleCounter.
#pragma once

#include <vector>

#include "gpusim/block.h"
#include "gpusim/warp.h"

namespace turbo::gpukernels {

// Thread partials for one reduction: partials[w] holds the 32 lane values of
// warp w. Produced by the load/accumulate phase of the calling kernel.
using RowPartials = std::vector<gpusim::WarpVec>;

// Reduces each row's thread partials to a scalar, batching all rows through
// the two-pass block reduction together (X = rows.size()). `identity` is the
// op's neutral element (0 for sum, -inf for max) used to pad inactive lanes.
//
// Charges (to block.cycles(), critical-path warp):
//   phase 1: one interleaved warp_all_reduce over X vectors,
//            one smem write batch of X values, one barrier;
//   phase 2: one smem read batch, one interleaved warp_all_reduce over X
//            vectors (only num_warps lanes active), one barrier.
std::vector<float> block_reduce_xelem(gpusim::BlockSim& block,
                                      std::vector<RowPartials>& rows,
                                      gpusim::ReduceOp op, float identity);

}  // namespace turbo::gpukernels
