#include "gpukernels/block_reduce.h"

#include "common/check.h"

namespace turbo::gpukernels {

using gpusim::BlockSim;
using gpusim::CycleCounter;
using gpusim::ReduceOp;
using gpusim::WarpVec;
using gpusim::kWarpSize;

std::vector<float> block_reduce_xelem(BlockSim& block,
                                      std::vector<RowPartials>& rows,
                                      ReduceOp op, float identity) {
  const int x = static_cast<int>(rows.size());
  TT_CHECK_GT(x, 0);
  const int num_warps = block.num_warps();
  for (const auto& r : rows) {
    TT_CHECK_EQ(static_cast<int>(r.size()), num_warps);
  }

  // A scratch counter for the non-critical warps: all warps execute phase 1
  // concurrently, so only warp 0's work lands on the block's critical path.
  CycleCounter scratch(block.spec());

  // --- Phase 1: each warp reduces its partials for all X rows together ---
  for (int w = 0; w < num_warps; ++w) {
    std::vector<WarpVec> vecs;
    vecs.reserve(static_cast<size_t>(x));
    for (int r = 0; r < x; ++r) vecs.push_back(rows[static_cast<size_t>(r)][static_cast<size_t>(w)]);
    gpusim::warp_all_reduce(vecs, op, w == 0 ? block.cycles() : scratch);
    for (int r = 0; r < x; ++r) rows[static_cast<size_t>(r)][static_cast<size_t>(w)] = vecs[static_cast<size_t>(r)];
  }

  // Lane 0 of each warp stores its X partials to shared memory: one batched
  // smem write, one barrier — for ALL X rows (the (X-1)/X saving).
  for (int w = 0; w < num_warps; ++w) {
    for (int r = 0; r < x; ++r) {
      block.smem(r * num_warps + w) = rows[static_cast<size_t>(r)][static_cast<size_t>(w)][0];
    }
  }
  block.cycles().charge_smem_batch(x);
  block.sync();

  // --- Phase 2: the first warp reduces the per-warp partials of all rows ---
  block.cycles().charge_smem_batch(x);  // gather partials from smem
  std::vector<WarpVec> finals;
  finals.reserve(static_cast<size_t>(x));
  for (int r = 0; r < x; ++r) {
    WarpVec v = WarpVec::filled(identity);
    TT_CHECK_LE(num_warps, kWarpSize);
    for (int w = 0; w < num_warps; ++w) {
      v[w] = block.smem(r * num_warps + w);
    }
    finals.push_back(v);
  }
  gpusim::warp_all_reduce(finals, op, block.cycles());

  // Broadcast through smem: one write + barrier so every thread sees the
  // result (the classical kernel needs this too, once per row).
  block.cycles().charge_smem_batch(x);
  block.sync();

  std::vector<float> out(static_cast<size_t>(x));
  for (int r = 0; r < x; ++r) out[static_cast<size_t>(r)] = finals[static_cast<size_t>(r)][0];
  return out;
}

}  // namespace turbo::gpukernels
