#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "gpukernels/block_reduce.h"
#include "gpukernels/reduction_sim.h"
#include "gpusim/block.h"
#include "kernels/reduction.h"

namespace turbo::gpukernels {

using gpusim::BlockSim;
using gpusim::DeviceSpec;
using gpusim::ReduceOp;
using gpusim::WarpVec;
using gpusim::kWarpSize;

namespace {

constexpr int kThreads = 128;

RowPartials strided_sum_partials(const float* row, long cols, int threads,
                                 bool squared, float shift) {
  const int num_warps = threads / kWarpSize;
  RowPartials partials(static_cast<size_t>(num_warps), WarpVec::filled(0.0f));
  for (long c = 0; c < cols; ++c) {
    const int thread = static_cast<int>(c % threads);
    const int w = thread / kWarpSize;
    const int lane = thread % kWarpSize;
    const float v = row[c] - shift;
    partials[static_cast<size_t>(w)][lane] += squared ? v * v : v;
  }
  return partials;
}

struct GroupSim {
  double cycles = 0;
  std::vector<float> means;     // per row
  std::vector<float> inv_stds;  // per row
};

// One group of `x` rows through the layernorm reduction structure.
GroupSim simulate_group(const DeviceSpec& spec, ReductionImpl impl, int x,
                        long cols, const std::vector<const float*>& rows_in,
                        long smem_bytes, bool single_pass_var, float eps) {
  BlockSim block(spec, kThreads, smem_bytes);
  const long iters = (cols + kThreads - 1) / kThreads;
  const bool boundary = cols % kThreads != 0;
  const double row_bytes = static_cast<double>(cols) * sizeof(float);

  std::vector<std::vector<float>> synth;
  std::vector<const float*> rows = rows_in;
  if (rows.empty()) {
    synth.assign(static_cast<size_t>(x),
                 std::vector<float>(static_cast<size_t>(cols)));
    for (int r = 0; r < x; ++r) {
      for (long c = 0; c < cols; ++c) {
        synth[static_cast<size_t>(r)][static_cast<size_t>(c)] =
            0.1f * static_cast<float>((r * 3 + c) % 11);
      }
    }
    for (auto& s : synth) rows.push_back(s.data());
  }

  GroupSim out;

  if (impl == ReductionImpl::kTurbo && single_pass_var) {
    // --- Equation 1: reduce x and x^2 together in ONE pass ---
    // 2X interleaved reduction chains (sum and sum-of-squares per row)
    // through a single block reduction: one barrier pair serves everything.
    block.cycles().charge_gmem_stream(static_cast<double>(x) * row_bytes);
    block.cycles().charge_alu_batch(static_cast<int>(3 * x * iters));
    if (boundary) block.cycles().charge_divergence();

    std::vector<RowPartials> chains;
    for (int r = 0; r < x; ++r) {
      chains.push_back(strided_sum_partials(rows[static_cast<size_t>(r)],
                                            cols, kThreads, false, 0.0f));
      chains.push_back(strided_sum_partials(rows[static_cast<size_t>(r)],
                                            cols, kThreads, true, 0.0f));
    }
    const std::vector<float> reduced =
        block_reduce_xelem(block, chains, ReduceOp::kSum, 0.0f);
    for (int r = 0; r < x; ++r) {
      const float mean = reduced[static_cast<size_t>(2 * r)] /
                         static_cast<float>(cols);
      const float ex2 = reduced[static_cast<size_t>(2 * r + 1)] /
                        static_cast<float>(cols);
      const float var = std::max(0.0f, ex2 - mean * mean);
      out.means.push_back(mean);
      out.inv_stds.push_back(1.0f / std::sqrt(var + eps));
    }
  } else {
    // --- Classical two-reduction variance (FasterTransformer) ---
    // Pass A: E[x]. Pass B reduces (x - mean)^2 from the register-staged
    // row; the second reduction depends on the first, so their barriers
    // serialize.
    block.cycles().charge_gmem_stream(static_cast<double>(x) * row_bytes);
    block.cycles().charge_alu_batch(static_cast<int>(x * iters));
    if (boundary) block.cycles().charge_divergence();

    std::vector<RowPartials> sum_chains;
    for (int r = 0; r < x; ++r) {
      sum_chains.push_back(strided_sum_partials(rows[static_cast<size_t>(r)],
                                                cols, kThreads, false, 0.0f));
    }
    const std::vector<float> sums =
        block_reduce_xelem(block, sum_chains, ReduceOp::kSum, 0.0f);

    block.cycles().charge_alu_batch(static_cast<int>(3 * x * iters));
    if (boundary) block.cycles().charge_divergence();

    std::vector<RowPartials> var_chains;
    for (int r = 0; r < x; ++r) {
      const float mean = sums[static_cast<size_t>(r)] /
                         static_cast<float>(cols);
      out.means.push_back(mean);
      var_chains.push_back(strided_sum_partials(rows[static_cast<size_t>(r)],
                                                cols, kThreads, true, mean));
    }
    const std::vector<float> var_sums =
        block_reduce_xelem(block, var_chains, ReduceOp::kSum, 0.0f);
    for (int r = 0; r < x; ++r) {
      const float var = var_sums[static_cast<size_t>(r)] /
                        static_cast<float>(cols);
      out.inv_stds.push_back(1.0f / std::sqrt(var + eps));
    }
  }

  // --- Normalize + affine pass (row register-resident, store once) ---
  block.cycles().charge_gmem_stream(1.0 * x * row_bytes +
                                    2.0 * row_bytes /* gamma, beta */);
  block.cycles().charge_alu_batch(static_cast<int>(3 * x * iters));
  block.cycles().charge_sfu_batch(x);  // rsqrt per row
  if (boundary) block.cycles().charge_divergence();

  out.cycles = block.cycles().cycles();
  return out;
}

}  // namespace

SimKernelResult layernorm_sim(float* out, const float* in, const float* gamma,
                              const float* beta, long rows, long cols,
                              ReductionImpl impl, const DeviceSpec& spec,
                              int x_elem, bool single_pass_var) {
  TT_CHECK_GT(rows, 0);
  TT_CHECK_GT(cols, 0);
  TT_CHECK_GE(x_elem, 1);
  TT_CHECK_MSG(impl != ReductionImpl::kCudnn,
               "cuDNN provides no LayerNorm kernel");
  constexpr float kEps = 1e-5f;

  const int x = impl == ReductionImpl::kTurbo ? x_elem : 1;
  const int num_warps = kThreads / kWarpSize;
  const long smem_bytes =
      2L * x * num_warps * static_cast<long>(sizeof(float));

  const int first_group_rows = static_cast<int>(std::min<long>(x, rows));
  std::vector<const float*> first_rows;
  if (in != nullptr) {
    for (int r = 0; r < first_group_rows; ++r) first_rows.push_back(in + r * cols);
  }
  GroupSim group =
      simulate_group(spec, impl, first_group_rows, cols, first_rows,
                     smem_bytes,
                     impl == ReductionImpl::kTurbo && single_pass_var, kEps);

  const long groups_total = (rows + x - 1) / x;
  const int concurrent =
      spec.num_sms * gpusim::occupancy_blocks_per_sm(spec, kThreads,
                                                     smem_bytes);
  const int grid = static_cast<int>(std::min<long>(groups_total, concurrent));
  const long groups_per_block = (groups_total + grid - 1) / grid;

  SimKernelResult result;
  result.rows = rows;
  result.cols = cols;
  result.launch = gpusim::launch_time(
      spec, grid, kThreads, smem_bytes,
      group.cycles * static_cast<double>(groups_per_block));
  result.time_us = result.launch.time_us;

  if (in != nullptr) {
    TT_CHECK(out != nullptr);
    TT_CHECK(gamma != nullptr);
    TT_CHECK(beta != nullptr);
    // Cross-check simulated statistics of the first group before the bulk
    // kernel (which may run in place) overwrites the inputs.
    for (int r = 0; r < first_group_rows; ++r) {
      double sum = 0.0, sq = 0.0;
      const float* row = in + r * cols;
      for (long c = 0; c < cols; ++c) {
        sum += row[c];
        sq += static_cast<double>(row[c]) * row[c];
      }
      const double mean = sum / static_cast<double>(cols);
      const double var =
          std::max(0.0, sq / static_cast<double>(cols) - mean * mean);
      const double inv_std = 1.0 / std::sqrt(var + kEps);
      TT_CHECK_MSG(
          std::abs(group.means[static_cast<size_t>(r)] - mean) <= 1e-3,
          "layernorm sim mean divergence at row " << r);
      TT_CHECK_MSG(std::abs(group.inv_stds[static_cast<size_t>(r)] - inv_std) <=
                       1e-2 * inv_std,
                   "layernorm sim variance divergence at row " << r);
    }
    kernels::layernorm(out, in, gamma, beta, rows, cols, kEps);
  }
  return result;
}

}  // namespace turbo::gpukernels
