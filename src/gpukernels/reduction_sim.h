// Simulated GPU Softmax / LayerNorm kernels (paper §4.1.2, Figures 4-5).
//
// Three implementations of each batch-reduction kernel, differing only in
// how rows cross the block-reduction machinery:
//
//   kBaseline — the FasterTransformer-style classical kernel: rows are
//     reduced one at a time; every row pays its own warpReduce dependency
//     chain, shared-memory round trip and two barriers; LayerNorm performs
//     two dependent reductions (E[x], then E[(x-E[x])^2]).
//
//   kCudnn — a generic library kernel (softmax only): shared-memory tree
//     reduction (no warp shuffles), plus an unfused scaling pass, as a
//     stand-in for the cuDNN softmax routine the paper compares against.
//
//   kTurbo — TurboTransformers: warpAllReduceSum_XElem batches X rows per
//     reduction pass (one barrier for X rows, interleaved shuffle chains,
//     merged boundary handling); LayerNorm additionally reduces x and x^2
//     simultaneously using Var(x) = E(x^2) - E^2(x) (Equation 1).
//
// Every call both (a) computes the real numerics — the first row group runs
// through the lane-accurate simulator and is checked against the bulk CPU
// result — and (b) returns wall time from the cycle model + launch model.
// Passing data = nullptr gives cost-only mode (used by src/perfmodel).
#pragma once

#include "gpusim/device_spec.h"
#include "gpusim/launch.h"

namespace turbo::gpukernels {

enum class ReductionImpl { kBaseline, kCudnn, kTurbo };

const char* reduction_impl_name(ReductionImpl impl);

struct SimKernelResult {
  gpusim::LaunchResult launch;
  double time_us = 0;
  long rows = 0;
  long cols = 0;
};

// In-place softmax over data[rows, cols] (logits scaled by `scale`).
// x_elem is the row-batching width X (only used by kTurbo; paper uses 2).
SimKernelResult softmax_sim(float* data, long rows, long cols, float scale,
                            ReductionImpl impl,
                            const gpusim::DeviceSpec& spec, int x_elem = 2);

// LayerNorm of in[rows, cols] into out (may alias). kCudnn is not available
// (cuDNN has no layernorm; the paper compares baseline vs turbo only).
// single_pass_var toggles the Equation-1 trick (ablation; kTurbo only).
SimKernelResult layernorm_sim(float* out, const float* in, const float* gamma,
                              const float* beta, long rows, long cols,
                              ReductionImpl impl,
                              const gpusim::DeviceSpec& spec, int x_elem = 2,
                              bool single_pass_var = true);

}  // namespace turbo::gpukernels
