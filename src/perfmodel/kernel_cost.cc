#include "perfmodel/kernel_cost.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "gpukernels/reduction_sim.h"

namespace turbo::perfmodel {

namespace {

// Fraction of the device a GEMM of `flops` can keep busy. Small problems
// cannot fill all SMs with enough tiles; we approximate utilization by the
// number of 128x128x32 MACC tiles relative to two full waves of SMs.
double gemm_utilization(double flops, const gpusim::DeviceSpec& spec) {
  const double tile_flops = 2.0 * 128 * 128 * 32;
  const double tiles = flops / tile_flops;
  const double full = 2.0 * spec.num_sms;
  return std::clamp(tiles / full, 0.02, 1.0);
}

}  // namespace

double gemm_time_us(double flops, double bytes, const RuntimeProfile& profile,
                    const gpusim::DeviceSpec& spec) {
  TT_CHECK_GE(flops, 0.0);
  const double peak_tflops =
      profile.tensor_core && spec.tensor_core_tflops > 0
          ? 0.45 * spec.tensor_core_tflops  // fp16 TC sustains ~half of peak
          : spec.fp32_tflops;
  const double eff = profile.gemm_efficiency * gemm_utilization(flops, spec);
  const double compute_us = flops / (peak_tflops * 1e12 * eff) * 1e6;
  const double memory_us = bytes / (spec.mem_bandwidth_gbps * 1e9) * 1e6;
  return std::max(compute_us, memory_us);
}

double kernel_time_us(graph::OpKind kind, const graph::OpCost& cost,
                      const RuntimeProfile& profile,
                      const gpusim::DeviceSpec& spec) {
  double us = profile.launch_overhead_us;
  switch (cost.cls) {
    case graph::CostClass::kGemm:
      us += gemm_time_us(cost.flops, cost.bytes, profile, spec);
      break;
    case graph::CostClass::kReduction: {
      TT_CHECK_GT(cost.reduce_rows, 0);
      TT_CHECK_GT(cost.reduce_cols, 0);
      const bool is_softmax = kind == graph::OpKind::kSoftmax;
      auto impl = profile.reduction_impl;
      // cuDNN has no layernorm; profiles that would pick it fall back to
      // the classical kernel.
      if (!is_softmax && impl == gpukernels::ReductionImpl::kCudnn) {
        impl = gpukernels::ReductionImpl::kBaseline;
      }
      // Cost-only reduction sims are deterministic in (kind, impl, shape,
      // device), and warmup/serving sweeps hit the same shapes constantly —
      // memoize them.
      struct Key {
        bool softmax;
        int impl;
        long rows, cols;
        int sms;
        bool operator==(const Key&) const = default;
      };
      struct KeyHash {
        size_t operator()(const Key& k) const {
          size_t h = std::hash<long>()(k.rows * 131071 + k.cols);
          h ^= std::hash<int>()(k.impl * 4 + (k.softmax ? 2 : 0) + k.sms * 8) +
               0x9e3779b9 + (h << 6) + (h >> 2);
          return h;
        }
      };
      static thread_local std::unordered_map<Key, double, KeyHash> cache;
      const Key key{is_softmax, static_cast<int>(impl), cost.reduce_rows,
                    cost.reduce_cols, spec.num_sms};
      auto it = cache.find(key);
      double sim_us;
      if (it != cache.end()) {
        sim_us = it->second;
      } else {
        gpukernels::SimKernelResult sim;
        if (is_softmax) {
          sim = gpukernels::softmax_sim(nullptr, cost.reduce_rows,
                                        cost.reduce_cols, 1.0f, impl, spec);
        } else {
          sim = gpukernels::layernorm_sim(nullptr, nullptr, nullptr, nullptr,
                                          cost.reduce_rows, cost.reduce_cols,
                                          impl, spec);
        }
        sim_us = sim.time_us;
        cache.emplace(key, sim_us);
      }
      // The simulator already includes a device launch; replace it with the
      // profile's dispatch overhead (charged above) and apply the
      // framework-op multiplier.
      us += (sim_us - spec.kernel_launch_us) * profile.reduction_overhead;
      // Residual/bias traffic fused into the reduction still moves bytes
      // beyond the rows the sim streams (it reads each row once per pass).
      const double sim_bytes = 3.0 * cost.reduce_rows *
                               static_cast<double>(cost.reduce_cols) *
                               sizeof(float);
      if (cost.bytes > sim_bytes) {
        us += (cost.bytes - sim_bytes) /
              (spec.mem_bandwidth_gbps * 1e9 * profile.elementwise_efficiency) *
              1e6;
      }
      break;
    }
    case graph::CostClass::kElementwise:
      us += cost.bytes /
            (spec.mem_bandwidth_gbps * 1e9 * profile.elementwise_efficiency) *
            1e6;
      break;
  }
  return us;
}

}  // namespace turbo::perfmodel
