// Runtime profiles: the mechanistic differences between the serving
// runtimes the paper compares (Table 1, Figures 9 & 14).
//
// Each baseline is modeled as the same transformer workload executed under
// that runtime's documented combination of mechanisms:
//   * which graph it runs (fused vs the unfused framework op stream),
//   * per-kernel launch/dispatch overhead,
//   * what fraction of the GEMM roofline its BLAS path achieves
//     (TensorRT autotunes GEMM tile shapes offline; cuBLAS without tuning
//     leaves some performance behind — the paper attributes its ~10% gap to
//     TensorRT/FasterTransformer exactly to this),
//   * how its non-GEMM reduction kernels are implemented (framework ops,
//     FasterTransformer's classical batch reduction, or Turbo's XElem),
//   * its memory allocator (for stall accounting and the footprint figures),
//   * whether it needs dimension-specific preprocessing (Table 1: such
//     runtimes cannot serve variable-length requests at all).
#pragma once

#include <string>

#include "gpukernels/reduction_sim.h"

namespace turbo::perfmodel {

enum class AllocatorKind { kNaive, kCaching, kBfcArena, kModelAware };

struct RuntimeProfile {
  std::string name;
  bool fused_graph = true;
  double launch_overhead_us = 5.0;   // per kernel launch
  double gemm_efficiency = 0.88;     // fraction of roofline peak achieved
  bool tensor_core = false;
  gpukernels::ReductionImpl reduction_impl =
      gpukernels::ReductionImpl::kTurbo;
  // Extra multiplier on reduction-kernel time (framework ops carry
  // interpreter/layout overhead on top of the kernel itself).
  double reduction_overhead = 1.0;
  double elementwise_efficiency = 0.90;  // fraction of DRAM bandwidth
  AllocatorKind allocator = AllocatorKind::kModelAware;
  bool requires_preprocess = false;  // Table 1 "Preprocess"
  bool variable_length_ok = true;    // Table 1 "Variable-Len"

  static RuntimeProfile pytorch();
  static RuntimeProfile onnxruntime();
  static RuntimeProfile tf_xla();
  static RuntimeProfile faster_transformers();
  static RuntimeProfile tensorrt();
  static RuntimeProfile turbo();
  static RuntimeProfile turbo_tc();
};

}  // namespace turbo::perfmodel
