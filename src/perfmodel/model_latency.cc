#include "perfmodel/model_latency.h"

#include <map>
#include <unordered_map>

#include "common/check.h"
#include "graph/fusion.h"
#include "perfmodel/kernel_cost.h"

namespace turbo::perfmodel {

namespace {

// Layer graphs keyed by (dims, fused) — construction involves a few dozen
// std::function allocations, so share them across the hot warmup loops.
const graph::Graph& layer_graph(const graph::LayerDims& dims, bool fused) {
  struct Key {
    int h, heads, inter;
    bool fused;
    bool operator<(const Key& o) const {
      return std::tie(h, heads, inter, fused) <
             std::tie(o.h, o.heads, o.inter, o.fused);
    }
  };
  static thread_local std::map<Key, graph::Graph> cache;
  const Key key{dims.hidden, dims.heads, dims.intermediate, fused};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, fused ? graph::build_encoder_layer_fused(dims)
                                  : graph::build_encoder_layer_unfused(dims))
             .first;
  }
  return it->second;
}

void accumulate(LatencyBreakdown& acc, graph::CostClass cls, double us) {
  acc.total_us += us;
  switch (cls) {
    case graph::CostClass::kGemm:
      acc.gemm_us += us;
      break;
    case graph::CostClass::kReduction:
      acc.reduction_us += us;
      break;
    case graph::CostClass::kElementwise:
      acc.elementwise_us += us;
      break;
  }
}

}  // namespace

LatencyBreakdown encoder_latency(const EncoderModelDesc& model, int batch,
                                 int seq, const RuntimeProfile& profile,
                                 const gpusim::DeviceSpec& spec,
                                 double planning_us) {
  TT_CHECK_GT(batch, 0);
  TT_CHECK_GT(seq, 0);
  const graph::Graph& layer = layer_graph(model.dims, profile.fused_graph);

  LatencyBreakdown acc;
  std::unordered_map<std::string, size_t> kernel_index;

  // Embedding front-end: gather + add (bandwidth) and one layernorm.
  {
    graph::OpCost gather;
    gather.cls = graph::CostClass::kElementwise;
    gather.bytes = 3.0 * batch * seq * model.dims.hidden * sizeof(float);
    const double us = kernel_time_us(graph::OpKind::kEmbeddingLookup, gather,
                                     profile, spec);
    accumulate(acc, gather.cls, us);
    acc.launch_us += profile.launch_overhead_us;
    acc.per_kernel_us.emplace_back("Embedding", us);
    kernel_index["Embedding"] = acc.per_kernel_us.size() - 1;

    graph::OpCost ln;
    ln.cls = graph::CostClass::kReduction;
    ln.reduce_rows = static_cast<long>(batch) * seq;
    ln.reduce_cols = model.dims.hidden;
    ln.bytes = 2.0 * batch * seq * model.dims.hidden * sizeof(float);
    const double ln_us =
        kernel_time_us(graph::OpKind::kLayerNorm, ln, profile, spec);
    accumulate(acc, ln.cls, ln_us);
    acc.launch_us += profile.launch_overhead_us;
    acc.per_kernel_us.emplace_back("LayerNorm", ln_us);
    kernel_index["LayerNorm"] = acc.per_kernel_us.size() - 1;
  }

  for (const auto& node : layer.ops()) {
    const graph::OpCost cost = node.cost_fn(batch, seq);
    const double us =
        kernel_time_us(node.kind, cost, profile, spec) *
        static_cast<double>(model.num_layers);
    accumulate(acc, cost.cls, us);
    acc.launch_us +=
        profile.launch_overhead_us * static_cast<double>(model.num_layers);
    auto it = kernel_index.find(node.name);
    if (it == kernel_index.end()) {
      acc.per_kernel_us.emplace_back(node.name, us);
      kernel_index[node.name] = acc.per_kernel_us.size() - 1;
    } else {
      acc.per_kernel_us[it->second].second += us;
    }
  }

  acc.allocator_us = planning_us;
  acc.total_us += planning_us;
  return acc;
}

double encoder_latency_ms(const EncoderModelDesc& model, int batch, int seq,
                          const RuntimeProfile& profile,
                          const gpusim::DeviceSpec& spec,
                          double planning_us) {
  return encoder_latency(model, batch, seq, profile, spec, planning_us)
             .total_us /
         1000.0;
}

double decoder_latency_us(const DecoderModelDesc& model, int src_len,
                          const RuntimeProfile& profile,
                          const gpusim::DeviceSpec& spec) {
  TT_CHECK_GT(src_len, 0);
  const int H = model.hidden;
  const int I = model.intermediate;
  const int beam = model.beam;
  const double kF = sizeof(float);

  // --- Encoder over the source sentence (batch 1) ---
  EncoderModelDesc enc;
  enc.dims.hidden = H;
  enc.dims.heads = model.heads;
  enc.dims.intermediate = I;
  enc.num_layers = model.num_layers;
  double total_us = encoder_latency(enc, 1, src_len, profile, spec).total_us;

  const int tgt_len = std::min(
      model.max_target_len,
      std::max(1, static_cast<int>(src_len * model.target_ratio)));

  auto gemm = [&](double m, double n, double k) {
    graph::OpCost c;
    c.cls = graph::CostClass::kGemm;
    c.flops = 2.0 * m * n * k;
    c.bytes = (m * k + k * n + m * n) * kF;
    return kernel_time_us(graph::OpKind::kGemm, c, profile, spec);
  };
  auto softmax = [&](long rows, long cols) {
    graph::OpCost c;
    c.cls = graph::CostClass::kReduction;
    c.reduce_rows = rows;
    c.reduce_cols = cols;
    c.bytes = 2.0 * rows * cols * kF;
    return kernel_time_us(graph::OpKind::kSoftmax, c, profile, spec);
  };
  auto layernorm = [&](long rows, long cols) {
    graph::OpCost c;
    c.cls = graph::CostClass::kReduction;
    c.reduce_rows = rows;
    c.reduce_cols = cols;
    c.bytes = 3.0 * rows * cols * kF;
    return kernel_time_us(graph::OpKind::kAddBiasLayerNorm, c, profile, spec);
  };

  // --- Beam-search decode steps ---
  // At step t, the beam batch attends over a t-long self-attention cache and
  // the src_len-long encoder memory. Cross-attention K/V are projected once
  // per sentence, not per step.
  double cross_kv_us =
      model.num_layers * gemm(src_len, 2.0 * H, H);  // K and V packed
  total_us += cross_kv_us;

  for (int t = 1; t <= tgt_len; ++t) {
    double step_us = 0;
    // Output-vocabulary projection + softmax over logits (dominant cost).
    step_us += gemm(beam, model.vocab, H);
    step_us += softmax(beam, model.vocab);
    for (int layer = 0; layer < model.num_layers; ++layer) {
      // Self-attention: QKV for the new token, scores over the cache.
      step_us += gemm(beam, 3.0 * H, H);
      step_us += gemm(static_cast<double>(beam) * model.heads, t,
                      H / model.heads);
      step_us += softmax(static_cast<long>(beam) * model.heads, t);
      step_us += gemm(static_cast<double>(beam) * model.heads,
                      H / model.heads, t);
      step_us += gemm(beam, H, H);  // output projection
      step_us += layernorm(beam, H);
      // Cross-attention over encoder memory.
      step_us += gemm(beam, H, H);  // Q projection
      step_us += gemm(static_cast<double>(beam) * model.heads, src_len,
                      H / model.heads);
      step_us += softmax(static_cast<long>(beam) * model.heads, src_len);
      step_us += gemm(static_cast<double>(beam) * model.heads,
                      H / model.heads, src_len);
      step_us += gemm(beam, H, H);
      step_us += layernorm(beam, H);
      // Feed-forward network.
      step_us += gemm(beam, I, H);
      step_us += gemm(beam, H, I);
      step_us += layernorm(beam, H);
    }
    total_us += step_us;
  }
  return total_us;
}

}  // namespace turbo::perfmodel
