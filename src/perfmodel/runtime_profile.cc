#include "perfmodel/runtime_profile.h"

namespace turbo::perfmodel {

using gpukernels::ReductionImpl;

RuntimeProfile RuntimeProfile::pytorch() {
  RuntimeProfile p;
  p.name = "PyTorch";
  p.fused_graph = false;           // executes the 24-op unfused stream
  p.launch_overhead_us = 10.0;     // eager dispatch + kernel launch
  p.gemm_efficiency = 0.85;        // stock cuBLAS
  p.reduction_impl = ReductionImpl::kBaseline;
  // TH-era Softmax/LayerNorm kernels (separate mask/scale passes, poor
  // coalescing) run far off the hand-written kernels on large inputs —
  // the Table 2 "before" column. Launch-dominated small shapes are
  // unaffected (the multiplier applies to kernel time minus dispatch).
  p.reduction_overhead = 6.0;
  p.elementwise_efficiency = 0.65;
  p.allocator = AllocatorKind::kCaching;
  return p;
}

RuntimeProfile RuntimeProfile::onnxruntime() {
  RuntimeProfile p;
  p.name = "onnxruntime";
  p.fused_graph = true;            // graph-level fusion since 1.3
  p.launch_overhead_us = 6.0;
  p.gemm_efficiency = 0.86;
  p.reduction_impl = ReductionImpl::kBaseline;
  p.reduction_overhead = 1.0;
  p.elementwise_efficiency = 0.85;
  p.allocator = AllocatorKind::kBfcArena;
  return p;
}

RuntimeProfile RuntimeProfile::tf_xla() {
  RuntimeProfile p;
  p.name = "TensorFlow-XLA";
  p.fused_graph = true;
  p.launch_overhead_us = 6.5;
  p.gemm_efficiency = 0.85;
  p.reduction_impl = ReductionImpl::kBaseline;
  p.reduction_overhead = 1.1;
  p.elementwise_efficiency = 0.85;
  p.allocator = AllocatorKind::kCaching;
  p.requires_preprocess = true;   // XLA compiles per input shape
  p.variable_length_ok = false;
  return p;
}

RuntimeProfile RuntimeProfile::faster_transformers() {
  RuntimeProfile p;
  p.name = "FasterTransformers";
  p.fused_graph = true;
  p.launch_overhead_us = 4.0;     // thin TF custom-op wrapper
  p.gemm_efficiency = 0.95;       // hand-picked GEMM algorithms
  p.reduction_impl = ReductionImpl::kBaseline;  // the Fig. 4 classical kernel
  p.reduction_overhead = 1.0;
  p.elementwise_efficiency = 0.92;
  p.allocator = AllocatorKind::kCaching;  // borrows TF's allocator
  p.requires_preprocess = true;
  p.variable_length_ok = false;
  return p;
}

RuntimeProfile RuntimeProfile::tensorrt() {
  RuntimeProfile p;
  p.name = "TensorRT";
  p.fused_graph = true;
  p.launch_overhead_us = 3.0;     // captured engine, minimal dispatch
  p.gemm_efficiency = 1.0;        // offline-autotuned GEMM tiles
  p.reduction_impl = ReductionImpl::kTurbo;  // tuned block sizes, par w/ ours
  p.reduction_overhead = 1.05;
  p.elementwise_efficiency = 0.95;
  p.allocator = AllocatorKind::kModelAware;  // static plan, zero stall
  p.requires_preprocess = true;
  p.variable_length_ok = false;
  return p;
}

RuntimeProfile RuntimeProfile::turbo() {
  RuntimeProfile p;
  p.name = "Turbo";
  p.fused_graph = true;
  p.launch_overhead_us = 5.0;
  p.gemm_efficiency = 0.88;       // stock cuBLAS, no offline tuning
  p.reduction_impl = ReductionImpl::kTurbo;
  p.reduction_overhead = 1.0;
  p.elementwise_efficiency = 0.92;
  p.allocator = AllocatorKind::kModelAware;
  return p;
}

RuntimeProfile RuntimeProfile::turbo_tc() {
  RuntimeProfile p = turbo();
  p.name = "Turbo-TC";
  p.tensor_core = true;
  return p;
}

}  // namespace turbo::perfmodel
