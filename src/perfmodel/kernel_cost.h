// Per-kernel latency model.
//
// GEMM: a roofline over the device's peak FLOP rate and DRAM bandwidth,
// de-rated by the runtime's GEMM efficiency and by a utilization factor for
// launches too small to fill the device (this is what makes batching pay
// off for short sequences — paper Fig. 7).
//
// Reductions (Softmax/LayerNorm): costed mechanistically by executing the
// corresponding kernel on the GPU simulator in cost-only mode, using the
// runtime profile's reduction implementation.
//
// Elementwise: bandwidth-bound bytes over the de-rated DRAM bandwidth.
//
// Every kernel additionally pays the profile's launch/dispatch overhead —
// the dominant term for short sequences (paper §4.1.1: PyTorch leaves the
// GPU idle 80.64% of the time at bs=1, len=40).
#pragma once

#include "graph/graph.h"
#include "gpusim/device_spec.h"
#include "perfmodel/runtime_profile.h"

namespace turbo::perfmodel {

// Time (us) of the GEMM portion alone: roofline x efficiency x utilization.
double gemm_time_us(double flops, double bytes, const RuntimeProfile& profile,
                    const gpusim::DeviceSpec& spec);

// Full kernel time (us) for one op of the given kind and workload,
// including the profile's launch overhead.
double kernel_time_us(graph::OpKind kind, const graph::OpCost& cost,
                      const RuntimeProfile& profile,
                      const gpusim::DeviceSpec& spec);

}  // namespace turbo::perfmodel
