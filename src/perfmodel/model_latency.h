// End-to-end model latency estimation.
//
// Encoder models (BERT / ALBERT / DistilBERT) are costed by walking their
// encoder-layer graph (fused or unfused per the runtime profile) and
// summing kernel times, plus the embedding front-end. The Seq2Seq decoder
// is costed step-by-step: beam-width batch, growing KV cache, per-step
// output-vocabulary projection — the structure that makes generation
// latency superlinear in source length (paper Fig. 9, bottom).
#pragma once

#include <string>
#include <vector>

#include "graph/builders.h"
#include "gpusim/device_spec.h"
#include "perfmodel/runtime_profile.h"

namespace turbo::perfmodel {

struct EncoderModelDesc {
  std::string name = "bert";
  graph::LayerDims dims;
  int num_layers = 12;
  int vocab = 30522;
};

struct LatencyBreakdown {
  double total_us = 0;
  double gemm_us = 0;
  double reduction_us = 0;
  double elementwise_us = 0;
  double launch_us = 0;       // total dispatch overhead included above
  double allocator_us = 0;    // planning / stall charged on top
  // kernel name -> accumulated time over all layers (Fig. 10 input)
  std::vector<std::pair<std::string, double>> per_kernel_us;
};

// Latency of one inference of an encoder model. `planning_us` adds the
// memory-planner overhead (Turbo's Algorithm 1, measured externally).
LatencyBreakdown encoder_latency(const EncoderModelDesc& model, int batch,
                                 int seq, const RuntimeProfile& profile,
                                 const gpusim::DeviceSpec& spec,
                                 double planning_us = 0.0);

// Convenience: just the total in milliseconds.
double encoder_latency_ms(const EncoderModelDesc& model, int batch, int seq,
                          const RuntimeProfile& profile,
                          const gpusim::DeviceSpec& spec,
                          double planning_us = 0.0);

struct DecoderModelDesc {
  std::string name = "seq2seq-decoder";
  // Table 3 prints "hidden_size=3072" for the decoder; read as the FFN
  // width of a transformer-big NMT layout (d_model 1024, 16 heads), which
  // is the only interpretation consistent with the paper's 100-300 ms
  // Fig. 9 latencies — a 3072-wide d_model is weight-bandwidth-bound at
  // ~10 ms per decode step on an RTX 2060 (see EXPERIMENTS.md).
  int num_layers = 6;
  int hidden = 1024;
  int heads = 16;
  int intermediate = 4096;
  int beam = 4;          // paper Table 3: beam_size = 4
  int vocab = 32000;
  int max_target_len = 500;  // paper Table 3: max_target_len = 500
  // Target length as a fraction of source length (zh->en is near 1:1).
  double target_ratio = 1.0;
};

// Latency (us) of translating one source sentence: encoder pass over the
// source plus target_len beam-search decode steps.
double decoder_latency_us(const DecoderModelDesc& model, int src_len,
                          const RuntimeProfile& profile,
                          const gpusim::DeviceSpec& spec);

}  // namespace turbo::perfmodel
