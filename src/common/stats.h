// Small statistics helpers shared by benchmarks and the serving simulator.
#pragma once

#include <cstddef>
#include <vector>

namespace turbo {

// Summary of a sample of (latency) measurements.
struct SampleSummary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

// Linear-interpolated percentile, q in [0, 100]. Requires non-empty input.
double percentile(std::vector<double> xs, double q);

SampleSummary summarize(const std::vector<double>& xs);

// Online mean/variance accumulator (Welford).
class RunningStat {
 public:
  void add(double x);
  size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace turbo
