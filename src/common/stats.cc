#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace turbo {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double q) {
  TT_CHECK(!xs.empty());
  TT_CHECK_GE(q, 0.0);
  TT_CHECK_LE(q, 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

SampleSummary summarize(const std::vector<double>& xs) {
  SampleSummary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.p50 = percentile(xs, 50);
  s.p95 = percentile(xs, 95);
  s.p99 = percentile(xs, 99);
  return s;
}

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace turbo
