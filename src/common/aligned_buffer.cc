#include "common/aligned_buffer.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/check.h"

namespace turbo {

namespace {
constexpr size_t kAlignment = 64;

size_t round_up(size_t n, size_t align) {
  return (n + align - 1) / align * align;
}
}  // namespace

AlignedBuffer::AlignedBuffer(size_t bytes) : size_(bytes) {
  if (bytes == 0) return;
  void* p = std::aligned_alloc(kAlignment, round_up(bytes, kAlignment));
  if (p == nullptr) throw std::bad_alloc();
  data_ = static_cast<std::byte*>(p);
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void AlignedBuffer::zero() {
  if (data_ != nullptr) std::memset(data_, 0, size_);
}

}  // namespace turbo
