// Minimal leveled logger. Thread-safe; writes to stderr.
//
//   TT_LOG(INFO) << "served " << n << " requests";
//
// The level threshold is process-global and can be raised in benchmarks to
// silence progress chatter.
#pragma once

#include <sstream>
#include <string>

namespace turbo {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace turbo

#define TT_LOG_DEBUG \
  ::turbo::detail::LogMessage(::turbo::LogLevel::kDebug, __FILE__, __LINE__)
#define TT_LOG_INFO \
  ::turbo::detail::LogMessage(::turbo::LogLevel::kInfo, __FILE__, __LINE__)
#define TT_LOG_WARNING \
  ::turbo::detail::LogMessage(::turbo::LogLevel::kWarning, __FILE__, __LINE__)
#define TT_LOG_ERROR \
  ::turbo::detail::LogMessage(::turbo::LogLevel::kError, __FILE__, __LINE__)
#define TT_LOG(severity) TT_LOG_##severity.stream()
