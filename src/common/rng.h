// Deterministic seeded RNG used everywhere randomness is needed so that all
// benchmarks and tests are reproducible run-to-run (the paper's experiments
// likewise fix the random seed across runtimes).
//
// The engine is xoshiro256**, seeded via SplitMix64.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace turbo {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL);

  // Raw 64 random bits.
  uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller.
  double normal();

  // Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  // Exponential with the given rate (used for Poisson inter-arrival times).
  double exponential(double rate);

  // Fill with uniform floats in [lo, hi).
  void fill_uniform(float* data, size_t n, float lo, float hi);

  // Fill with N(0, stddev) floats (typical transformer weight init).
  void fill_normal(float* data, size_t n, float mean, float stddev);

  // Random token ids in [0, vocab_size).
  std::vector<int> token_ids(int count, int vocab_size);

 private:
  uint64_t state_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace turbo
