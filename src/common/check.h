// Runtime invariant checks.
//
// TT_CHECK / TT_CHECK_* abort the operation by throwing turbo::CheckError,
// carrying the failing expression and location. They are always on (also in
// release builds): this library sits under a serving system, where silently
// corrupt tensor math is far worse than a rejected request.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace turbo {

// Error thrown when a TT_CHECK-style invariant fails.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "Check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace turbo

#define TT_CHECK(cond)                                                   \
  do {                                                                   \
    if (!(cond)) ::turbo::detail::check_failed(#cond, __FILE__, __LINE__, \
                                               "");                      \
  } while (0)

#define TT_CHECK_MSG(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream tt_os_;                                         \
      tt_os_ << msg;                                                     \
      ::turbo::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                    tt_os_.str());                       \
    }                                                                    \
  } while (0)

#define TT_CHECK_EQ(a, b) TT_CHECK_MSG((a) == (b), (a) << " vs " << (b))
#define TT_CHECK_NE(a, b) TT_CHECK_MSG((a) != (b), (a) << " vs " << (b))
#define TT_CHECK_LT(a, b) TT_CHECK_MSG((a) < (b), (a) << " vs " << (b))
#define TT_CHECK_LE(a, b) TT_CHECK_MSG((a) <= (b), (a) << " vs " << (b))
#define TT_CHECK_GT(a, b) TT_CHECK_MSG((a) > (b), (a) << " vs " << (b))
#define TT_CHECK_GE(a, b) TT_CHECK_MSG((a) >= (b), (a) << " vs " << (b))
