// 64-byte-aligned owned byte buffer. Models a raw device allocation: all
// tensor storage (whether owned directly or placed inside an allocator
// chunk) ultimately lives in one of these.
#pragma once

#include <cstddef>
#include <cstdint>

namespace turbo {

class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t bytes);
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Zero-fill the buffer (models cudaMemset).
  void zero();

 private:
  std::byte* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace turbo
