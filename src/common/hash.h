// Shared hashing helpers.
#pragma once

#include <cstdint>
#include <vector>

namespace turbo {

// FNV-1a over a token-id stream. Used wherever a token sequence keys a
// cache (serving::ResponseCache responses, genserve::KvCachePool prompt
// shares); collisions are resolved by the callers' exact compares, so this
// only needs to spread well, not be collision-free.
inline uint64_t fnv1a_range(const int* tokens, int count) {
  uint64_t h = 1469598103934665603ULL;
  for (int i = 0; i < count; ++i) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(tokens[i]));
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t fnv1a_tokens(const std::vector<int>& tokens) {
  return fnv1a_range(tokens.data(), static_cast<int>(tokens.size()));
}

}  // namespace turbo
