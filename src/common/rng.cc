#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace turbo {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TT_CHECK_LE(lo, hi);
  return lo + (hi - lo) * uniform();
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  TT_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection-free modulo is fine here: span is tiny versus 2^64 for every
  // caller (sequence lengths, token ids), so bias is negligible.
  return lo + static_cast<int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  TT_CHECK_GT(rate, 0.0);
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

void Rng::fill_uniform(float* data, size_t n, float lo, float hi) {
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(uniform(lo, hi));
  }
}

void Rng::fill_normal(float* data, size_t n, float mean, float stddev) {
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(normal(mean, stddev));
  }
}

std::vector<int> Rng::token_ids(int count, int vocab_size) {
  TT_CHECK_GT(vocab_size, 0);
  std::vector<int> ids(static_cast<size_t>(count));
  for (auto& id : ids) {
    id = static_cast<int>(uniform_int(0, vocab_size - 1));
  }
  return ids;
}

}  // namespace turbo
