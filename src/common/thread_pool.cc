#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/check.h"

namespace turbo {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(size_t n,
                              const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t num_shards = std::min(n, num_threads());
  if (num_shards <= 1) {
    fn(0, n);
    return;
  }

  std::atomic<size_t> remaining{num_shards};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  const size_t chunk = (n + num_shards - 1) / num_shards;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const size_t begin = shard * chunk;
    const size_t end = std::min(n, begin + chunk);
    submit([&, begin, end] {
      try {
        if (begin < end) fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace turbo
