// Fixed-size thread pool with a parallel_for helper.
//
// The CPU kernels in src/kernels use this to stand in for the massive
// parallelism of the GPU: work is split across hardware threads in
// contiguous index ranges (good cache behaviour for row-major tensors).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace turbo {

class ThreadPool {
 public:
  // num_threads == 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Runs fn(begin, end) on ranges partitioning [0, n). Blocks until done.
  // Exceptions thrown by fn propagate to the caller (first one wins).
  void parallel_for(size_t n, const std::function<void(size_t, size_t)>& fn);

  // Process-wide default pool (constructed on first use).
  static ThreadPool& global();

 private:
  void worker_loop();
  void submit(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace turbo
