#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace turbo {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << level_name(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace turbo
