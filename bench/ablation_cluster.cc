// Ablation: multi-server load balancing (paper §5's Nexus-style upper
// level). Round-robin vs least-loaded dispatch over homogeneous and
// heterogeneous 2-GPU clusters serving the Fig. 15 workload.
#include <cstdio>

#include "bench/serving_figure.h"
#include "serving/load_balancer.h"
#include "serving/scheduler.h"

using namespace turbo;

int main() {
  const auto spec = gpusim::DeviceSpec::rtx2060();
  const auto table = bench::serving_cost_table(
      bench::bert_base(), perfmodel::RuntimeProfile::turbo(), spec,
      bench::kTurboServingOverheadMs, 100, 20);
  const serving::DpBatchScheduler scheduler(20);

  std::printf("Ablation — cluster load balancing (BERT, len 2-100, DP)\n");
  bench::print_rule('=');
  std::printf("%-26s %10s %18s %18s %14s\n", "cluster", "req/s",
              "round-robin", "least-loaded", "ll latency ms");

  struct Setup {
    const char* name;
    std::vector<serving::ClusterServer> servers;
  };
  std::vector<Setup> setups;
  setups.push_back({"1x RTX2060",
                    {{"gpu0", &scheduler, &table, 1.0}}});
  setups.push_back({"2x RTX2060",
                    {{"gpu0", &scheduler, &table, 1.0},
                     {"gpu1", &scheduler, &table, 1.0}}});
  setups.push_back({"fast + half-speed",
                    {{"gpu0", &scheduler, &table, 1.0},
                     {"gpu1", &scheduler, &table, 0.5}}});

  for (const auto& setup : setups) {
    for (double rate : {250.0, 500.0, 1000.0}) {
      serving::WorkloadSpec wspec;
      wspec.rate_per_s = rate;
      wspec.horizon_s = 6;
      wspec.min_len = 2;
      wspec.max_len = 100;
      const auto arrivals = serving::generate_poisson_workload(wspec);
      const auto rr = serving::simulate_cluster(
          arrivals, setup.servers, serving::DispatchPolicy::kRoundRobin, {});
      const auto ll = serving::simulate_cluster(
          arrivals, setup.servers, serving::DispatchPolicy::kLeastLoaded,
          {});
      std::printf("%-26s %10.0f %15.0f%s %15.0f%s %14.2f\n", setup.name,
                  rate, rr.total_response_rate, rr.any_saturated ? "*" : " ",
                  ll.total_response_rate, ll.any_saturated ? "*" : " ",
                  ll.latency_ms.mean);
    }
  }
  std::printf("(* = some server saturated; least-loaded matters once "
              "servers are heterogeneous)\n");
  return 0;
}
