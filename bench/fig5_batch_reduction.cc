// Figure 5: speedup of TurboTransformers' batch-reduction kernels over the
// FasterTransformer baseline (and cuDNN for Softmax) on Tesla V100.
//
// Softmax rows = batch * heads * seq (BERT-base heads = 12), cols = seq.
// LayerNorm rows = batch * seq, cols = hidden (768).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "gpukernels/reduction_sim.h"

using namespace turbo;
using gpukernels::ReductionImpl;

int main() {
  const auto spec = gpusim::DeviceSpec::v100();
  const int heads = 12, hidden = 768;
  const std::vector<int> batches = {1, 20};
  const std::vector<int> seq_for_b1 = {10, 20, 40, 60, 80, 100, 200, 300,
                                       400, 500};

  std::printf("Figure 5 — batch-reduction kernel speedups on %s\n",
              spec.name.c_str());
  bench::print_rule('=');

  std::printf("Softmax Speedup (Turbo vs FT baseline / vs cuDNN)\n");
  std::printf("%-14s %12s %12s %12s %14s %14s\n", "(bs, seq)", "baseline_us",
              "cudnn_us", "turbo_us", "vs_baseline", "vs_cudnn");
  for (int bs : batches) {
    for (int seq : seq_for_b1) {
      const long rows = static_cast<long>(bs) * heads * seq;
      const double base =
          gpukernels::softmax_sim(nullptr, rows, seq, 1.0f,
                                  ReductionImpl::kBaseline, spec)
              .time_us;
      const double cudnn =
          gpukernels::softmax_sim(nullptr, rows, seq, 1.0f,
                                  ReductionImpl::kCudnn, spec)
              .time_us;
      const double turbo =
          gpukernels::softmax_sim(nullptr, rows, seq, 1.0f,
                                  ReductionImpl::kTurbo, spec)
              .time_us;
      std::printf("(%2d, %4d)     %12.2f %12.2f %12.2f %13.2fx %13.2fx\n",
                  bs, seq, base, cudnn, turbo, base / turbo, cudnn / turbo);
    }
  }

  bench::print_rule();
  std::printf("LayerNorm Speedup (Turbo vs FT baseline)\n");
  std::printf("%-14s %12s %12s %14s\n", "(bs, seq)", "baseline_us",
              "turbo_us", "vs_baseline");
  for (int bs : batches) {
    for (int seq : seq_for_b1) {
      const long rows = static_cast<long>(bs) * seq;
      const double base =
          gpukernels::layernorm_sim(nullptr, nullptr, nullptr, nullptr, rows,
                                    hidden, ReductionImpl::kBaseline, spec)
              .time_us;
      const double turbo =
          gpukernels::layernorm_sim(nullptr, nullptr, nullptr, nullptr, rows,
                                    hidden, ReductionImpl::kTurbo, spec)
              .time_us;
      std::printf("(%2d, %4d)     %12.2f %12.2f %13.2fx\n", bs, seq, base,
                  turbo, base / turbo);
    }
  }
  return 0;
}
