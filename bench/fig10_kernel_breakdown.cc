// Figure 10: time distribution over BERT computation kernels for a short
// (seq 20) and a long (seq 400) request on the Turbo runtime.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

using namespace turbo;

int main() {
  const auto spec = gpusim::DeviceSpec::rtx2060();
  const auto model = bench::bert_base();
  const auto profile = perfmodel::RuntimeProfile::turbo();

  const auto long_lb = perfmodel::encoder_latency(model, 1, 400, profile,
                                                  spec);
  const auto short_lb = perfmodel::encoder_latency(model, 1, 20, profile,
                                                   spec);

  std::map<std::string, double> short_pct;
  for (const auto& [name, us] : short_lb.per_kernel_us) {
    short_pct[name] = 100.0 * us / short_lb.total_us;
  }

  std::printf("Figure 10 — BERT kernel time distribution (Turbo, %s)\n",
              spec.name.c_str());
  bench::print_rule('=');
  std::printf("%-34s %12s %12s\n", "kernel", "seqlen=400", "seqlen=20");

  auto sorted = long_lb.per_kernel_us;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  double gemm400 = 0, gemm20 = 0;
  for (const auto& [name, us] : sorted) {
    const double pct400 = 100.0 * us / long_lb.total_us;
    std::printf("%-34s %11.2f%% %11.2f%%\n", name.c_str(), pct400,
                short_pct.count(name) ? short_pct[name] : 0.0);
  }
  gemm400 = 100.0 * long_lb.gemm_us / long_lb.total_us;
  gemm20 = 100.0 * short_lb.gemm_us / short_lb.total_us;
  bench::print_rule();
  std::printf("%-34s %11.2f%% %11.2f%%\n", "GEMM kernels total", gemm400,
              gemm20);
  std::printf("%-34s %11.2f%% %11.2f%%\n", "reduction kernels total",
              100.0 * long_lb.reduction_us / long_lb.total_us,
              100.0 * short_lb.reduction_us / short_lb.total_us);
  std::printf("%-34s %11.2f%% %11.2f%%\n", "elementwise kernels total",
              100.0 * long_lb.elementwise_us / long_lb.total_us,
              100.0 * short_lb.elementwise_us / short_lb.total_us);
  std::printf(
      "\n(paper: GEMM 82.80%% at len 400, 70.31%% at len 20; Softmax and "
      "LayerNorm no longer dominate the non-GEMM share)\n");
  return 0;
}
