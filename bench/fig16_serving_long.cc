// Figure 16 + Table 5: serving throughput and latency with the wide length
// range U(5, 500) and tensor-core GEMMs on. With this length dispersion,
// naive batching pays so much zero-padding that it falls below NoBatch —
// only the DP scheduler batches profitably (paper §6.3).
#include "bench/serving_figure.h"
#include "serving/scheduler.h"

using namespace turbo;

int main() {
  const auto spec = gpusim::DeviceSpec::rtx2060();
  const auto model = bench::bert_base();
  const auto pytorch_table = bench::serving_cost_table(
      model, perfmodel::RuntimeProfile::pytorch(), spec,
      bench::kPyTorchServingOverheadMs, 500, 20);
  const auto turbo_tc_table = bench::serving_cost_table(
      model, perfmodel::RuntimeProfile::turbo_tc(), spec,
      bench::kTurboServingOverheadMs, 500, 20);

  std::vector<bench::ServingSystem> systems;
  systems.push_back({"PyTorch-NoBatch", &pytorch_table,
                     std::make_unique<serving::NoBatchScheduler>()});
  systems.push_back({"Turbo-TC-NoBatch", &turbo_tc_table,
                     std::make_unique<serving::NoBatchScheduler>()});
  systems.push_back({"Turbo-TC-Naive-Batch", &turbo_tc_table,
                     std::make_unique<serving::NaiveBatchScheduler>(20)});
  systems.push_back({"Turbo-TC-DP-Batch", &turbo_tc_table,
                     std::make_unique<serving::DpBatchScheduler>(20)});

  bench::run_serving_figure(
      "Figure 16 + Table 5 — serving variable-length requests (len 5-500, "
      "tensor cores on)",
      5, 500, systems);
  std::printf(
      "\n(paper critical points: PyTorch-NoBatch 60, Turbo-TC-NoBatch 120 "
      "(2.0x), Turbo-TC-Naive-Batch 98 — *below* NoBatch due to padding — "
      "Turbo-TC-DP-Batch 144 (2.4x) resp/s)\n");
  return 0;
}
