// Figure 8: the paper's worked batch-scheduler example — five queued
// requests of lengths {17, 18, 52, 63, 77}; the DP scheduler packs three
// batches and beats both one-big-batch and no-batching.
#include <cstdio>

#include "bench/bench_common.h"
#include "perfmodel/runtime_profile.h"
#include "serving/scheduler.h"

using namespace turbo;

namespace {

void report(const char* name, const std::vector<serving::Batch>& batches,
            const std::vector<serving::Request>& requests) {
  double total_ms = serving::scheme_cost_ms(batches);
  std::printf("%-22s total %7.2f ms  (%6.2f resp/sec)\n", name, total_ms,
              1000.0 * requests.size() / total_ms);
  for (const auto& b : batches) {
    std::printf("    batch: lens {");
    for (size_t i = 0; i < b.request_indices.size(); ++i) {
      std::printf("%s%d", i ? ", " : "",
                  requests[b.request_indices[i]].length);
    }
    std::printf("} padded to %d, %.2f ms\n", b.padded_length,
                b.predicted_cost_ms);
  }
}

}  // namespace

int main() {
  const auto spec = gpusim::DeviceSpec::rtx2060();
  const auto table = bench::serving_cost_table(
      bench::bert_base(), perfmodel::RuntimeProfile::turbo(), spec,
      bench::kTurboServingOverheadMs, 128, 20);

  std::vector<serving::Request> requests;
  int64_t id = 0;
  for (int len : {17, 18, 52, 63, 77}) {
    serving::Request r;
    r.id = id++;
    r.length = len;
    requests.push_back(r);
  }

  std::printf("Figure 8 — batch scheduling of requests {17, 18, 52, 63, 77}\n");
  bench::print_rule('=');
  report("NoBatch", serving::NoBatchScheduler().schedule(requests, table),
         requests);
  report("Single batch (naive)",
         serving::NaiveBatchScheduler(20).schedule(requests, table),
         requests);
  report("DP scheduler",
         serving::DpBatchScheduler(20).schedule(requests, table), requests);
  return 0;
}
