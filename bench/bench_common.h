// Shared helpers for the per-figure benchmark binaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "gpusim/device_spec.h"
#include "perfmodel/model_latency.h"
#include "serving/cost_table.h"
#include "serving/request.h"

namespace turbo::bench {

inline perfmodel::EncoderModelDesc bert_base() {
  perfmodel::EncoderModelDesc d;
  d.name = "Bert";
  d.dims = graph::LayerDims{768, 12, 3072};
  d.num_layers = 12;
  return d;
}

inline perfmodel::EncoderModelDesc albert() {
  perfmodel::EncoderModelDesc d;
  d.name = "Albert";
  d.dims = graph::LayerDims{4096, 64, 16384};
  d.num_layers = 12;
  return d;
}

inline perfmodel::EncoderModelDesc distilbert() {
  perfmodel::EncoderModelDesc d;
  d.name = "DistilBert";
  d.dims = graph::LayerDims{768, 12, 3072};
  d.num_layers = 6;
  return d;
}

// Per-batch service-layer overhead (request handling, message queue,
// framework dispatch), calibrated so the NoBatch critical points land near
// the paper's §6.3 numbers (PyTorch-NoBatch ~99 resp/s, Turbo-NoBatch ~237
// resp/s for lengths 2-100). Documented in EXPERIMENTS.md.
inline constexpr double kTurboServingOverheadMs = 1.3;
inline constexpr double kPyTorchServingOverheadMs = 4.8;

// Cost table for a runtime profile, latency from the performance model
// plus the serving-layer overhead.
inline serving::CostTable serving_cost_table(
    const perfmodel::EncoderModelDesc& model,
    const perfmodel::RuntimeProfile& profile,
    const gpusim::DeviceSpec& spec, double overhead_ms, int max_len,
    int max_batch) {
  return serving::CostTable::warmup(
      [&](int len, int batch) {
        return overhead_ms + perfmodel::encoder_latency_ms(model, batch, len,
                                                           profile, spec);
      },
      max_len, max_batch, /*len_step=*/8);
}

inline void print_rule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

// ---------------------------------------------------------------------------
// Synthetic generation workloads, shared by the serving benches so every
// binary stresses the same trace shapes (and so determinism fixes land in
// one place).
// ---------------------------------------------------------------------------

// One tenant of a multi-tenant arrival trace: a request population with
// its own route, prompt-length band, output budget, SLO priority, and
// (optionally) bursty arrivals.
struct TenantSpec {
  std::string model;            // GenerationRequest::model ("" = default)
  int requests = 0;
  int64_t id_base = 0;          // ids id_base .. id_base + requests - 1
  int src_lo = 4;               // prompt length, uniform inclusive band
  int src_hi = 10;
  int max_new_tokens = 16;
  int priority = 0;             // SLO class under serving::slo_class_of
  int vocab = 500;
  // Bursty arrivals: requests land in bursts of `burst` every `period`
  // virtual steps. burst == 0 (default) puts the whole population at step
  // 0 — the all-upfront shape bench_gen_multimodel uses.
  int burst = 0;
  int period = 0;
};

// A request plus its virtual arrival instant (steps, not wall clock —
// traces replay deterministically).
struct TracedRequest {
  serving::GenerationRequest request;
  int64_t arrival_step = 0;
};

// One tenant's requests in id order. The RNG call sequence per request is
// exactly bench_gen_multimodel's original (one length draw, then the
// token draw), so refactored benches keep their historical workloads
// bit-for-bit.
inline std::vector<TracedRequest> make_tenant_trace(const TenantSpec& t,
                                                    Rng& rng) {
  std::vector<TracedRequest> out;
  out.reserve(static_cast<size_t>(std::max(0, t.requests)));
  for (int i = 0; i < t.requests; ++i) {
    serving::GenerationRequest r;
    r.id = t.id_base + i;
    r.src_tokens = rng.token_ids(
        static_cast<int>(rng.uniform_int(t.src_lo, t.src_hi)), t.vocab);
    r.max_new_tokens = t.max_new_tokens;
    r.eos_id = 2;
    r.model = t.model;
    r.priority = t.priority;
    TracedRequest tr;
    tr.request = std::move(r);
    if (t.burst > 0 && t.period > 0) {
      tr.arrival_step = static_cast<int64_t>(i / t.burst) * t.period;
    }
    out.push_back(std::move(tr));
  }
  return out;
}

// Interleaved multi-tenant trace, arrival order (stable on ties: tenant
// listing order, then id order — fully deterministic). Tenants draw from
// the one `rng` in listing order, so the per-tenant populations match
// generating each tenant alone with the same starting stream.
inline std::vector<TracedRequest> make_multi_tenant_trace(
    const std::vector<TenantSpec>& tenants, Rng& rng) {
  std::vector<TracedRequest> all;
  for (const TenantSpec& t : tenants) {
    auto part = make_tenant_trace(t, rng);
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TracedRequest& a, const TracedRequest& b) {
                     return a.arrival_step < b.arrival_step;
                   });
  return all;
}

// Strip arrival stamps (for benches that submit everything upfront).
inline std::vector<serving::GenerationRequest> trace_requests(
    const std::vector<TracedRequest>& trace) {
  std::vector<serving::GenerationRequest> out;
  out.reserve(trace.size());
  for (const TracedRequest& t : trace) out.push_back(t.request);
  return out;
}

// One chat turn's requests over per-conversation fed histories
// (bench_gen_radix_prefix's trace shape): conversation c's request id is
// turn * 100 + c and its prompt is the whole history so far.
inline std::vector<serving::GenerationRequest> chat_turn_requests(
    const std::vector<std::vector<int>>& histories, int turn, int max_new) {
  std::vector<serving::GenerationRequest> out;
  out.reserve(histories.size());
  for (size_t c = 0; c < histories.size(); ++c) {
    serving::GenerationRequest req;
    req.id = static_cast<int64_t>(turn) * 100 + static_cast<int64_t>(c);
    req.src_tokens = histories[c];
    req.max_new_tokens = max_new;
    req.bos_id = 1;
    req.eos_id = 2;
    out.push_back(std::move(req));
  }
  return out;
}

// EOS-from-trajectory pre-pass (as in bench_gen_preemption): retarget each
// request's eos_id to a token its own uncontended greedy trajectory
// (`probe_tokens`, keyed by request id) actually emits near a drawn
// position, so "finishes early" is deterministic and identical across
// runs and placements.
inline void assign_natural_eos(
    std::vector<serving::GenerationRequest>& requests,
    const std::map<int64_t, std::vector<int>>& probe_tokens, Rng& rng,
    int lo, int hi) {
  for (auto& r : requests) {
    const auto& toks = probe_tokens.at(r.id);
    const int target = static_cast<int>(rng.uniform_int(lo, hi));
    std::map<int, int> first_occurrence;
    for (size_t k = 0; k < toks.size(); ++k) {
      first_occurrence.emplace(toks[k], static_cast<int>(k));
    }
    int best_tok = -1, best_dist = 1 << 30;
    for (const auto& [tok, first] : first_occurrence) {
      const int dist = std::abs(first - target);
      if (dist < best_dist) {
        best_dist = dist;
        best_tok = tok;
      }
    }
    TT_CHECK_GE(best_tok, 0);
    r.eos_id = best_tok;
  }
}

}  // namespace turbo::bench
