// Shared helpers for the per-figure benchmark binaries.
#pragma once

#include <cstdio>

#include "gpusim/device_spec.h"
#include "perfmodel/model_latency.h"
#include "serving/cost_table.h"

namespace turbo::bench {

inline perfmodel::EncoderModelDesc bert_base() {
  perfmodel::EncoderModelDesc d;
  d.name = "Bert";
  d.dims = graph::LayerDims{768, 12, 3072};
  d.num_layers = 12;
  return d;
}

inline perfmodel::EncoderModelDesc albert() {
  perfmodel::EncoderModelDesc d;
  d.name = "Albert";
  d.dims = graph::LayerDims{4096, 64, 16384};
  d.num_layers = 12;
  return d;
}

inline perfmodel::EncoderModelDesc distilbert() {
  perfmodel::EncoderModelDesc d;
  d.name = "DistilBert";
  d.dims = graph::LayerDims{768, 12, 3072};
  d.num_layers = 6;
  return d;
}

// Per-batch service-layer overhead (request handling, message queue,
// framework dispatch), calibrated so the NoBatch critical points land near
// the paper's §6.3 numbers (PyTorch-NoBatch ~99 resp/s, Turbo-NoBatch ~237
// resp/s for lengths 2-100). Documented in EXPERIMENTS.md.
inline constexpr double kTurboServingOverheadMs = 1.3;
inline constexpr double kPyTorchServingOverheadMs = 4.8;

// Cost table for a runtime profile, latency from the performance model
// plus the serving-layer overhead.
inline serving::CostTable serving_cost_table(
    const perfmodel::EncoderModelDesc& model,
    const perfmodel::RuntimeProfile& profile,
    const gpusim::DeviceSpec& spec, double overhead_ms, int max_len,
    int max_batch) {
  return serving::CostTable::warmup(
      [&](int len, int batch) {
        return overhead_ms + perfmodel::encoder_latency_ms(model, batch, len,
                                                           profile, spec);
      },
      max_len, max_batch, /*len_step=*/8);
}

inline void print_rule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace turbo::bench
