// KV arena microbenchmark: TLSF vs whole-slab block storage.
//
// Part 1 — allocator latency. Per-op p50/p99 malloc and free nanoseconds
// for the TLSF arena against a whole-slab free-list pool (the same
// mechanics KvCachePool uses under kSlab: AlignedBuffer slabs carved into
// fixed blocks, freed blocks pushed on a free list, empty-slab sweeps) on
// an identical fixed-size churn trace. A second TLSF-only trace mixes
// span sizes from 256 B to 16 KiB — the variable-size traffic slab pools
// cannot serve at all — and reports the arena's own counters (splits,
// coalesces, failures) plus full-coalescing checks after drain.
//
// Part 2 — mixed-geometry saturation. Two decoder-only models with
// different block_tokens contend for one shared byte budget through
// MultiModelGenerationServer, once under kSlab and once under kTlsf.
// Reported per run: peak live bytes, peak time-correlated waste
// (resident minus live, see KvCachePool::peak_waste_bytes) and the
// fragmentation ratio (live+waste)/live. Outputs are asserted
// bit-identical to dedicated uncontended servers in both modes (always
// hard). The frag-ratio gate demotes to report-only under
// TURBO_BENCH_NO_GATE like every other timing-adjacent gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/aligned_buffer.h"
#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "genserve/model_bundle.h"
#include "genserve/multi_model_server.h"
#include "memory/tlsf_arena.h"
#include "serving/request.h"

using namespace turbo;

namespace {

// ------------------------------------------------------------ part 1 ----

// Whole-slab baseline with KvCachePool's kSlab mechanics, reduced to the
// allocator core: fixed-size blocks, slab-granular device buffers, LIFO
// free list, explicit empty-slab sweep.
class SlabPool {
 public:
  SlabPool(size_t block_bytes, int blocks_per_slab)
      : block_bytes_(block_bytes), blocks_per_slab_(blocks_per_slab) {}

  int malloc_block() {
    if (free_.empty()) {
      size_t idx = slabs_.size();
      for (size_t i = 0; i < slabs_.size(); ++i) {
        if (slabs_[i].buffer.empty()) {
          idx = i;
          break;
        }
      }
      if (idx == slabs_.size()) slabs_.emplace_back();
      slabs_[idx].buffer = AlignedBuffer(block_bytes_ *
                                         static_cast<size_t>(blocks_per_slab_));
      slabs_[idx].live = 0;
      for (int i = 0; i < blocks_per_slab_; ++i) {
        free_.push_back(static_cast<int>(idx) * blocks_per_slab_ + i);
      }
    }
    const int id = free_.back();
    free_.pop_back();
    ++slabs_[static_cast<size_t>(id / blocks_per_slab_)].live;
    return id;
  }

  void free_block(int id) {
    auto& slab = slabs_[static_cast<size_t>(id / blocks_per_slab_)];
    --slab.live;
    free_.push_back(id);
    if (slab.live == 0) {  // sweep, as pools do under memory pressure
      slab.buffer = AlignedBuffer();
      const int base = (id / blocks_per_slab_) * blocks_per_slab_;
      std::erase_if(free_, [&](int b) {
        return b >= base && b < base + blocks_per_slab_;
      });
    }
  }

 private:
  struct Slab {
    AlignedBuffer buffer;
    int live = 0;
  };
  size_t block_bytes_;
  int blocks_per_slab_;
  std::vector<Slab> slabs_;
  std::vector<int> free_;
};

struct LatencyDist {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

LatencyDist percentiles(std::vector<double>& ns) {
  TT_CHECK(!ns.empty());
  LatencyDist d;
  const auto nth = [&](double q) {
    const size_t k = static_cast<size_t>(q * static_cast<double>(ns.size() - 1));
    std::nth_element(ns.begin(), ns.begin() + static_cast<ptrdiff_t>(k),
                     ns.end());
    return ns[k];
  };
  d.p50_ns = nth(0.50);
  d.p99_ns = nth(0.99);
  return d;
}

double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Fixed-size churn: identical op sequence against both allocators.
// Returns {malloc_dist, free_dist}.
template <typename AllocFn, typename FreeFn>
std::pair<LatencyDist, LatencyDist> churn(uint64_t seed, int ops,
                                          AllocFn&& do_alloc,
                                          FreeFn&& do_free) {
  Rng rng(seed);
  std::vector<double> malloc_ns, free_ns;
  malloc_ns.reserve(static_cast<size_t>(ops));
  free_ns.reserve(static_cast<size_t>(ops));
  for (int op = 0; op < ops; ++op) {
    if (rng.uniform_int(0, 99) < 55) {
      const double t0 = now_ns();
      do_alloc();
      malloc_ns.push_back(now_ns() - t0);
    } else {
      const double t0 = now_ns();
      do_free(rng);
      free_ns.push_back(now_ns() - t0);
    }
  }
  return {percentiles(malloc_ns), percentiles(free_ns)};
}

// ------------------------------------------------------------ part 2 ----

genserve::GenServerOptions engine_options(int block_tokens,
                                          genserve::KvArenaKind arena) {
  genserve::GenServerOptions o;
  o.pool.block_tokens = block_tokens;
  o.pool.blocks_per_slab = 4;
  o.pool.arena = arena;
  o.scheduler.max_active = 6;
  return o;
}

struct SaturationResult {
  std::map<int64_t, std::vector<int>> tokens_by_id;
  size_t peak_live = 0;
  size_t peak_waste = 0;
  size_t preemptions = 0;
  double frag_ratio = 0.0;
};

SaturationResult run_saturation(
    genserve::KvArenaKind arena,
    const std::shared_ptr<genserve::ModelBundle>& a,
    const std::shared_ptr<genserve::ModelBundle>& b,
    const std::vector<serving::GenerationRequest>& reqs_a,
    const std::vector<serving::GenerationRequest>& reqs_b,
    size_t total_budget) {
  genserve::MultiModelOptions options;
  options.engine = engine_options(4, arena);
  options.total_kv_bytes = total_budget;
  genserve::MultiModelGenerationServer server(options);
  server.register_bundle(a, total_budget / 2, engine_options(4, arena));
  server.register_bundle(b, total_budget / 2, engine_options(6, arena));
  for (const auto& r : reqs_a) server.submit(r);
  for (const auto& r : reqs_b) server.submit(r);
  SaturationResult res;
  for (auto& resp : server.run_to_completion()) {
    res.tokens_by_id[resp.request_id] = std::move(resp.tokens);
  }
  for (const auto& s : server.stats()) {
    res.peak_live += s.pool.peak_live_bytes;
    res.peak_waste += s.pool.peak_waste_bytes;
    res.preemptions += s.pool.preemptions;
  }
  TT_CHECK_GT(res.peak_live, 0u);
  res.frag_ratio = static_cast<double>(res.peak_live + res.peak_waste) /
                   static_cast<double>(res.peak_live);
  // Decoder-only engines keep radix-cached prefixes charged after drain,
  // so the budget is not empty here — just never over-committed.
  TT_CHECK_LE(server.budget().snapshot().peak_used_bytes, total_budget);
  return res;
}

}  // namespace

int main() {
  const bool gate = std::getenv("TURBO_BENCH_NO_GATE") == nullptr;
  const size_t kBlock = 1024;  // one tiny-config KV block
  const int kOps = 200000;

  // --- fixed-size latency: TLSF arena vs whole-slab pool --------------
  memory::TlsfArena arena(64 * kBlock, /*granule_bytes=*/64);
  std::vector<size_t> tlsf_live;
  const auto tlsf_dist = churn(
      0x75F1, kOps,
      [&] {
        const size_t off = arena.malloc(kBlock);
        if (off != memory::TlsfArena::kNoSpace) {
          tlsf_live.push_back(off);
        }
      },
      [&](Rng& rng) {
        if (tlsf_live.empty()) return;
        const size_t i = static_cast<size_t>(
            rng.uniform_int(0, static_cast<int64_t>(tlsf_live.size()) - 1));
        std::swap(tlsf_live[i], tlsf_live.back());
        arena.free(tlsf_live.back());
        tlsf_live.pop_back();
      });
  for (const size_t off : tlsf_live) arena.free(off);
  arena.check_invariants();
  TT_CHECK_EQ(arena.live_bytes(), 0u);
  TT_CHECK_EQ(arena.free_bytes(), arena.capacity_bytes());

  SlabPool slab_pool(kBlock, /*blocks_per_slab=*/8);
  std::vector<int> slab_live;
  const auto slab_dist = churn(
      0x75F1, kOps,
      [&] { slab_live.push_back(slab_pool.malloc_block()); },
      [&](Rng& rng) {
        if (slab_live.empty()) return;
        const size_t i = static_cast<size_t>(
            rng.uniform_int(0, static_cast<int64_t>(slab_live.size()) - 1));
        std::swap(slab_live[i], slab_live.back());
        slab_pool.free_block(slab_live.back());
        slab_live.pop_back();
      });

  // --- mixed-size TLSF trace (slab pools cannot serve this) -----------
  memory::TlsfArena mixed(512 * 1024, 64);
  std::vector<size_t> mixed_live;
  Rng size_rng(0x9D2B);
  const auto mixed_dist = churn(
      0x41C7, kOps,
      [&] {
        const size_t bytes =
            static_cast<size_t>(size_rng.uniform_int(256, 16 * 1024));
        const size_t off = mixed.malloc(bytes);
        if (off != memory::TlsfArena::kNoSpace) mixed_live.push_back(off);
      },
      [&](Rng& rng) {
        if (mixed_live.empty()) return;
        const size_t i = static_cast<size_t>(
            rng.uniform_int(0, static_cast<int64_t>(mixed_live.size()) - 1));
        std::swap(mixed_live[i], mixed_live.back());
        mixed.free(mixed_live.back());
        mixed_live.pop_back();
      });
  const memory::TlsfArenaStats mixed_stats = mixed.stats();
  for (const size_t off : mixed_live) mixed.free(off);
  mixed.check_invariants();
  TT_CHECK_EQ(mixed.live_bytes(), 0u);

  std::printf("KV arena microbench — %d ops, %zu B blocks, 64 B granule\n",
              kOps, kBlock);
  bench::print_rule('=');
  std::printf("%-24s | %10s %10s | %10s %10s\n", "allocator", "malloc p50",
              "malloc p99", "free p50", "free p99");
  const auto row = [](const char* name, const LatencyDist& m,
                      const LatencyDist& f) {
    std::printf("%-24s | %8.0fns %8.0fns | %8.0fns %8.0fns\n", name, m.p50_ns,
                m.p99_ns, f.p50_ns, f.p99_ns);
  };
  row("slab free-list", slab_dist.first, slab_dist.second);
  row("tlsf fixed 1 KiB", tlsf_dist.first, tlsf_dist.second);
  row("tlsf mixed 256B-16KiB", mixed_dist.first, mixed_dist.second);
  std::printf("tlsf mixed trace: %zu splits, %zu coalesces, %zu failed "
              "allocs, peak resident %zu KiB of %zu KiB\n",
              mixed_stats.splits, mixed_stats.coalesces,
              mixed_stats.failed_allocs, mixed_stats.peak_resident_bytes / 1024,
              mixed_stats.capacity_bytes / 1024);

  // --- mixed-geometry saturation under one budget ---------------------
  const auto cfg = model::ModelConfig::tiny_causal(2, 32, 2, 64, 50);
  auto ma = genserve::make_decoder_only_bundle("a", 1, cfg, 13);
  auto mb = genserve::make_decoder_only_bundle("b", 1, cfg, 17);
  Rng rng(0x5AB7);
  std::vector<serving::GenerationRequest> reqs_a, reqs_b;
  for (int i = 0; i < 16; ++i) {
    serving::GenerationRequest r;
    r.id = i;
    r.src_tokens = rng.token_ids(static_cast<int>(rng.uniform_int(5, 11)), 50);
    r.max_new_tokens = 12;
    r.bos_id = 1;
    r.eos_id = 2;
    r.model = "a";
    reqs_a.push_back(r);
    r.id = 100 + i;
    r.src_tokens = rng.token_ids(static_cast<int>(rng.uniform_int(5, 11)), 50);
    r.model = "b";
    reqs_b.push_back(std::move(r));
  }
  // Guarantees cover one worst-case sequence apiece (~12 KiB) so both
  // engines always make progress; everything beyond that is contended.
  const size_t total_budget = 28 * 1024;

  // Dedicated uncontended references for bit-identity.
  const auto dedicated = [](const std::shared_ptr<genserve::ModelBundle>& m,
                            const std::vector<serving::GenerationRequest>& rs,
                            int block_tokens) {
    genserve::GenerationServer server(
        m, engine_options(block_tokens, genserve::KvArenaKind::kSlab));
    for (const auto& r : rs) server.submit(r);
    std::map<int64_t, std::vector<int>> tokens;
    for (auto& resp : server.run_to_completion()) {
      tokens[resp.request_id] = std::move(resp.tokens);
    }
    return tokens;
  };
  const auto ref_a = dedicated(ma, reqs_a, 4);
  const auto ref_b = dedicated(mb, reqs_b, 6);

  const SaturationResult slab_run = run_saturation(
      genserve::KvArenaKind::kSlab, ma, mb, reqs_a, reqs_b, total_budget);
  const SaturationResult tlsf_run = run_saturation(
      genserve::KvArenaKind::kTlsf, ma, mb, reqs_a, reqs_b, total_budget);
  for (const auto* ref : {&ref_a, &ref_b}) {
    for (const auto& [id, toks] : *ref) {
      TT_CHECK_MSG(slab_run.tokens_by_id.at(id) == toks,
                   "kSlab contended run diverged on request " << id);
      TT_CHECK_MSG(tlsf_run.tokens_by_id.at(id) == toks,
                   "kTlsf contended run diverged on request " << id);
    }
  }

  bench::print_rule('=');
  std::printf("mixed-geometry saturation — 2 models (1 KiB vs 1.5 KiB "
              "blocks), %zu KB shared budget, %zu+%zu requests\n",
              total_budget / 1024, reqs_a.size(), reqs_b.size());
  std::printf("%-10s | %12s %12s %10s %10s\n", "arena", "peak live",
              "peak waste", "frag", "preempt");
  const auto srow = [](const char* name, const SaturationResult& r) {
    std::printf("%-10s | %10zu B %10zu B %9.3fx %10zu\n", name, r.peak_live,
                r.peak_waste, r.frag_ratio, r.preemptions);
  };
  srow("slab", slab_run);
  srow("tlsf", tlsf_run);
  std::printf("outputs bit-identical to dedicated servers under both "
              "arenas.\n");

  if (gate) {
    // Structural gates only — per-op timing stays report-only (shared CI
    // clocks are untrustworthy), but the fragmentation claim is exact.
    TT_CHECK_GT(slab_run.preemptions + tlsf_run.preemptions, 0u);
    TT_CHECK_LT(tlsf_run.frag_ratio, slab_run.frag_ratio);
  } else {
    std::printf("(gates skipped: TURBO_BENCH_NO_GATE set)\n");
  }
  return 0;
}
