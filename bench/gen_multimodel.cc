// Multi-model serving: one shared slab budget vs a static per-model
// partition, under skewed two-model load.
//
// Two decoder configurations serve the same device-memory budget B. The
// static baseline gives each model max_bytes = B/2 — its own
// GenerationServer, its own cap, nobody can touch the other's half. The
// shared run fronts both models with MultiModelGenerationServer: each
// model's pool charges the one SlabBudget (guarantee B/2 apiece), so the
// busy model borrows the slabs the light one is not using and the light
// model reclaims them through the preemption path when its own traffic
// needs its guarantee back.
//
// The load is deliberately skewed — a deep queue on the "heavy" model, a
// trickle on the "light" one — which is exactly where static partitioning
// wastes memory: the light half idles while the heavy half preempts. Both
// runs are asserted bit-identical, request for request, to each model's
// dedicated uncontended server (always hard, preemptions and reclaims
// included). The utilization/throughput gates demote to report-only under
// TURBO_BENCH_NO_GATE (shared CI runners have untrustworthy clocks).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "genserve/model_bundle.h"
#include "genserve/multi_model_server.h"
#include "serving/request.h"

using namespace turbo;

namespace {

// Different shapes on purpose: multi-model serving must arbitrate across
// pools whose block geometry differs.
model::ModelConfig heavy_config() {
  return model::ModelConfig::tiny(/*layers=*/2, /*hidden=*/64, /*heads=*/4,
                                  /*inter=*/128, /*vocab=*/500);
}
model::ModelConfig light_config() {
  return model::ModelConfig::tiny(/*layers=*/2, /*hidden=*/32, /*heads=*/2,
                                  /*inter=*/64, /*vocab=*/500);
}

genserve::GenServerOptions engine_options() {
  genserve::GenServerOptions o;
  o.pool.block_tokens = 8;
  o.pool.blocks_per_slab = 8;
  o.scheduler.max_active = 8;
  o.scheduler.optimistic_admission = true;
  return o;
}

struct RunResult {
  std::map<int64_t, std::vector<int>> tokens_by_id;
  size_t tokens = 0;
  double wall_s = 0.0;
  double mean_utilization = 0.0;  // mean aggregate used / budget
  size_t peak_used = 0;           // peak aggregate slab bytes
  size_t preemptions = 0;
  size_t reclaims = 0;
  int64_t iterations = 0;
};

void collect(std::vector<serving::GenerationResponse> responses,
             RunResult& r) {
  for (auto& resp : responses) {
    r.tokens += resp.tokens.size();
    r.tokens_by_id[resp.request_id] = std::move(resp.tokens);
  }
}

// Dedicated uncontended reference: unbounded pool, one model, no budget.
RunResult run_dedicated(const std::shared_ptr<genserve::ModelBundle>& bundle,
                        const std::vector<serving::GenerationRequest>& reqs) {
  genserve::GenerationServer server(bundle, engine_options());
  for (const auto& req : reqs) server.submit(req);
  RunResult r;
  collect(server.run_to_completion(), r);
  return r;
}

// Static partition: each model runs its own server capped at half the
// budget; the loop interleaves one step per model per iteration — the
// same cross-model cadence the shared run gets, minus the borrowing.
RunResult run_static_once(
    const std::shared_ptr<genserve::ModelBundle>& heavy,
    const std::shared_ptr<genserve::ModelBundle>& light,
    const std::vector<serving::GenerationRequest>& heavy_reqs,
    const std::vector<serving::GenerationRequest>& light_reqs,
    size_t total_budget) {
  genserve::GenServerOptions heavy_opts = engine_options();
  heavy_opts.pool.max_bytes = total_budget / 2;
  genserve::GenServerOptions light_opts = engine_options();
  light_opts.pool.max_bytes = total_budget / 2;
  genserve::GenerationServer heavy_server(heavy, heavy_opts);
  genserve::GenerationServer light_server(light, light_opts);
  for (const auto& req : heavy_reqs) heavy_server.submit(req);
  for (const auto& req : light_reqs) light_server.submit(req);

  RunResult r;
  size_t used_sum = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (!heavy_server.idle() || !light_server.idle()) {
    heavy_server.step();
    light_server.step();
    const size_t used = heavy_server.pool().stats().current_device_bytes +
                        light_server.pool().stats().current_device_bytes;
    used_sum += used;
    r.peak_used = std::max(r.peak_used, used);
    ++r.iterations;
  }
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  collect(heavy_server.take_completed(), r);
  collect(light_server.take_completed(), r);
  r.mean_utilization = r.iterations
                           ? static_cast<double>(used_sum) /
                                 (static_cast<double>(r.iterations) *
                                  static_cast<double>(total_budget))
                           : 0.0;
  r.preemptions = heavy_server.scheduler().total_preempted() +
                  light_server.scheduler().total_preempted();
  return r;
}

// Shared budget: both pools charge one SlabBudget, guarantee B/2 apiece.
RunResult run_shared_once(
    const std::shared_ptr<genserve::ModelBundle>& heavy,
    const std::shared_ptr<genserve::ModelBundle>& light,
    const std::vector<serving::GenerationRequest>& heavy_reqs,
    const std::vector<serving::GenerationRequest>& light_reqs,
    size_t total_budget) {
  genserve::MultiModelOptions options;
  options.engine = engine_options();
  options.total_kv_bytes = total_budget;
  genserve::MultiModelGenerationServer server(options);
  server.register_bundle(heavy, total_budget / 2);
  server.register_bundle(light, total_budget / 2);
  for (const auto& req : heavy_reqs) server.submit(req);
  for (const auto& req : light_reqs) server.submit(req);

  RunResult r;
  size_t used_sum = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (!server.idle()) {
    server.step();
    const size_t used = server.budget().used_bytes();
    used_sum += used;
    r.peak_used = std::max(r.peak_used, used);
    ++r.iterations;
  }
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  collect(server.take_completed(), r);
  r.mean_utilization = r.iterations
                           ? static_cast<double>(used_sum) /
                                 (static_cast<double>(r.iterations) *
                                  static_cast<double>(total_budget))
                           : 0.0;
  for (const auto& s : server.stats()) r.preemptions += s.pool.preemptions;
  r.reclaims = server.total_reclaims();
  TT_CHECK_LE(server.budget().snapshot().peak_used_bytes, total_budget);
  TT_CHECK_EQ(server.budget().used_bytes(), 0u);
  return r;
}

// Scheduling is deterministic; only the clock is noisy. Best-of-N wall
// time, with every rep asserted token-identical to the first.
template <typename Fn>
RunResult best_of(Fn&& run, int reps = 3) {
  RunResult best = run();
  for (int rep = 1; rep < reps; ++rep) {
    RunResult r = run();
    TT_CHECK(r.tokens_by_id == best.tokens_by_id);
    TT_CHECK_EQ(r.iterations, best.iterations);
    if (r.wall_s < best.wall_s) best = std::move(r);
  }
  return best;
}

}  // namespace

int main() {
  const bool gate = std::getenv("TURBO_BENCH_NO_GATE") == nullptr;
  auto heavy = genserve::make_bundle("heavy", 1, heavy_config(), 31);
  auto light = genserve::make_bundle("light", 1, light_config(), 32);

  // Skewed load: 32 heavy requests with generous output budgets against 6
  // light ones (the shared trace generator reproduces this bench's
  // original RNG sequence exactly). Budgets are what worst-case sizing
  // must provision for; the EOS pre-pass makes actual generations stop
  // far earlier.
  Rng rng(0x3350);
  bench::TenantSpec heavy_tenant;
  heavy_tenant.model = "heavy";
  heavy_tenant.requests = 32;
  heavy_tenant.id_base = 0;
  heavy_tenant.src_lo = 6;
  heavy_tenant.src_hi = 16;
  heavy_tenant.max_new_tokens = 48;
  bench::TenantSpec light_tenant;
  light_tenant.model = "light";
  light_tenant.requests = 6;
  light_tenant.id_base = 1000;
  light_tenant.src_lo = 4;
  light_tenant.src_hi = 10;
  light_tenant.max_new_tokens = 16;
  std::vector<serving::GenerationRequest> heavy_reqs =
      bench::trace_requests(bench::make_tenant_trace(heavy_tenant, rng));
  std::vector<serving::GenerationRequest> light_reqs =
      bench::trace_requests(bench::make_tenant_trace(light_tenant, rng));
  bench::assign_natural_eos(heavy_reqs,
                            run_dedicated(heavy, heavy_reqs).tokens_by_id,
                            rng, 8, 24);
  bench::assign_natural_eos(light_reqs,
                            run_dedicated(light, light_reqs).tokens_by_id,
                            rng, 4, 10);

  // Bit-identity baselines: dedicated uncontended per-model servers.
  const RunResult ref_heavy = run_dedicated(heavy, heavy_reqs);
  const RunResult ref_light = run_dedicated(light, light_reqs);

  // Budget B: 8 heavy slabs. The static halves are 4 heavy slabs (the
  // heavy model starves: one worst-case request alone wants ~2) vs 8
  // light-model slabs (the light trickle never fills one).
  const size_t heavy_slab = static_cast<size_t>(8) * 8 *
                            heavy_config().kv_bytes_per_token() /
                            heavy_config().num_layers;
  const size_t total_budget = 8 * heavy_slab;

  const RunResult stat = best_of([&] {
    return run_static_once(heavy, light, heavy_reqs, light_reqs,
                           total_budget);
  });
  const RunResult shared = best_of([&] {
    return run_shared_once(heavy, light, heavy_reqs, light_reqs,
                           total_budget);
  });

  // Bit-identity (always hard): both arbitration schemes must reproduce
  // each model's dedicated run exactly, token for token.
  for (const auto* ref : {&ref_heavy, &ref_light}) {
    for (const auto& [id, toks] : ref->tokens_by_id) {
      TT_CHECK_MSG(stat.tokens_by_id.at(id) == toks,
                   "static partition diverged on request " << id);
      TT_CHECK_MSG(shared.tokens_by_id.at(id) == toks,
                   "shared budget diverged on request " << id);
    }
  }

  std::printf("multi-model serving — %zu heavy + %zu light requests, "
              "budget %zu KB (heavy guarantee %zu KB, light %zu KB)\n",
              heavy_reqs.size(), light_reqs.size(), total_budget / 1024,
              total_budget / 2048, total_budget / 2048);
  bench::print_rule('=');
  std::printf("%-16s | %9s %9s %9s | %8s %9s | %8s %8s\n", "arbitration",
              "tok/s", "wall ms", "iters", "util", "peak KB", "preempt",
              "reclaim");
  const auto row = [](const char* name, const RunResult& r) {
    std::printf("%-16s | %9.0f %9.1f %9lld | %7.1f%% %9.1f | %8zu %8zu\n",
                name, static_cast<double>(r.tokens) / r.wall_s,
                r.wall_s * 1e3, static_cast<long long>(r.iterations),
                100.0 * r.mean_utilization, r.peak_used / 1024.0,
                r.preemptions, r.reclaims);
  };
  row("static halves", stat);
  row("shared budget", shared);
  bench::print_rule();
  const double util_gain = shared.mean_utilization / stat.mean_utilization;
  const double tput_gain = (static_cast<double>(shared.tokens) /
                            shared.wall_s) /
                           (static_cast<double>(stat.tokens) / stat.wall_s);
  std::printf("shared vs static: %.2fx aggregate pool utilization, %.2fx "
              "completed-tokens/s, peak footprint %.1f vs %.1f KB\n",
              util_gain, tput_gain, shared.peak_used / 1024.0,
              stat.peak_used / 1024.0);
  std::printf("outputs bit-identical to the dedicated per-model servers in "
              "both modes.\n");

  if (gate) {
    TT_CHECK_GT(shared.preemptions, 0u);  // the skew really contended
    // The structural claim is utilization: borrowed slabs turn the light
    // model's stranded half into working memory (measured ~1.9x).
    TT_CHECK_GT(util_gain, 1.2);
    // Throughput is parity-or-better, not a win to gate hard: on one core
    // the fused step is ~linear in batch width, so the wider batches the
    // borrowed slabs buy amortize only the per-step fixed cost (observed
    // 0.95-1.15x run to run). Gate against a real regression only.
    TT_CHECK_GE(tput_gain, 0.9);
  } else {
    std::printf("(gates skipped: TURBO_BENCH_NO_GATE set)\n");
  }
  return 0;
}
