// Prefix sharing + pooled beam search: footprint and throughput.
//
// Part 1 replays the same generation burst through two servers that differ
// only in KvPoolOptions::enable_prefix_sharing. Requests draw their source
// sentence from a small set of prompt templates with probability equal to
// the prefix-overlap level (0 / 50 / 90%), modelling traffic where many
// requests repeat a hot prompt (retrieval contexts, system prompts,
// duplicated queries). With sharing on, a repeated prompt maps its cross
// blocks onto the live share (refcount++, encoder skipped); with sharing
// off every sequence allocates privately — the paper's §4.2 unshared
// baseline transplanted to KV blocks. Reported per level: peak pool
// footprint, peak working set, fused-step throughput, prefix hits and
// encoder batches skipped. Outputs are identical either way (sharing is
// exact, full-prompt keyed).
//
// Part 2 compares beam search over DenseKvCache deep copies against the
// same decode through the pool with copy-on-write fork(): identical
// hypotheses, with the pooled path's peak footprint shrinking as beams
// share their unchanged history physically.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "model/decoder.h"
#include "model/encoder.h"
#include "serving/request.h"

using namespace turbo;

namespace {

model::ModelConfig gen_config() {
  return model::ModelConfig::tiny(/*layers=*/2, /*hidden=*/64, /*heads=*/4,
                                  /*inter=*/128, /*vocab=*/500);
}

struct BurstResult {
  size_t peak_device = 0;    // slab footprint high-water mark (bytes)
  size_t peak_in_use = 0;    // unique live blocks high-water mark (bytes)
  double mean_device = 0.0;  // footprint averaged over decode iterations
  size_t tokens = 0;
  double wall_s = 0.0;
  size_t prefix_hits = 0;
  int shared_admits = 0;
};

BurstResult run_burst(const model::ModelConfig& config,
                      const std::vector<serving::GenerationRequest>& requests,
                      bool sharing) {
  genserve::GenServerOptions options;
  options.pool.block_tokens = 8;
  options.pool.blocks_per_slab = 8;  // fine slabs: footprint tracks sharing
  options.pool.enable_prefix_sharing = sharing;
  options.scheduler.max_active = 8;
  genserve::GenerationServer server(config, options, 29);

  BurstResult r;
  size_t device_sum = 0;
  int64_t iters = 0;
  server.set_step_observer([&](const genserve::StepStats& s) {
    r.peak_device = std::max(r.peak_device, s.kv_device_bytes);
    r.peak_in_use = std::max(r.peak_in_use, s.kv_bytes_in_use);
    device_sum += s.kv_device_bytes;
    ++iters;
    r.shared_admits += s.admitted_shared;
  });
  for (const auto& req : requests) server.submit(req);

  const auto t0 = std::chrono::steady_clock::now();
  const auto responses = server.run_to_completion();
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  for (const auto& resp : responses) r.tokens += resp.tokens.size();
  r.mean_device =
      iters ? static_cast<double>(device_sum) / static_cast<double>(iters)
            : 0.0;
  r.prefix_hits = server.pool().prefix_hits();
  return r;
}

}  // namespace

int main() {
  const auto config = gen_config();
  const double kb = 1024.0;

  // -------------------------------------------------------------------
  // Part 1: serving burst at 0 / 50 / 90% prefix overlap, sharing A/B.
  // -------------------------------------------------------------------
  const int num_requests = 30;
  const int num_templates = 3;
  std::printf("Prefix sharing — %d requests, %d hot prompt templates "
              "(src 40 tokens), cold src U(16,48), max_new U(4,24)\n",
              num_requests, num_templates);
  bench::print_rule('=');
  std::printf("%8s | %13s %13s %6s | %12s %6s | %9s %9s | %5s\n", "overlap",
              "peak off(KB)", "peak on(KB)", "saved", "mean on(KB)", "msave",
              "tok/s off", "tok/s on", "hits");

  for (const int overlap_pct : {0, 50, 90}) {
    Rng rng(0xA11CE);
    std::vector<std::vector<int>> templates;
    for (int i = 0; i < num_templates; ++i) {
      templates.push_back(rng.token_ids(40, 500));
    }
    std::vector<serving::GenerationRequest> requests;
    for (int i = 0; i < num_requests; ++i) {
      serving::GenerationRequest r;
      r.id = i;
      if (rng.uniform() * 100.0 < overlap_pct) {
        r.src_tokens = templates[static_cast<size_t>(
            rng.uniform_int(0, num_templates - 1))];
      } else {
        const int len = static_cast<int>(rng.uniform_int(16, 48));
        r.src_tokens = rng.token_ids(len, 500);
      }
      r.max_new_tokens = static_cast<int>(rng.uniform_int(4, 24));
      requests.push_back(std::move(r));
    }

    const BurstResult off = run_burst(config, requests, /*sharing=*/false);
    const BurstResult on = run_burst(config, requests, /*sharing=*/true);
    const double saved =
        off.peak_device
            ? 100.0 * (1.0 - static_cast<double>(on.peak_device) /
                                 static_cast<double>(off.peak_device))
            : 0.0;
    const double mean_saved =
        off.mean_device > 0.0
            ? 100.0 * (1.0 - on.mean_device / off.mean_device)
            : 0.0;
    std::printf("%7d%% | %13.1f %13.1f %5.1f%% | %12.1f %5.1f%% | %9.0f "
                "%9.0f | %5zu\n",
                overlap_pct, off.peak_device / kb, on.peak_device / kb, saved,
                on.mean_device / kb, mean_saved, off.tokens / off.wall_s,
                on.tokens / on.wall_s, on.prefix_hits);
    if (off.tokens != on.tokens) {
      std::printf("  !! token count diverged (%zu vs %zu) — sharing must be "
                  "exact\n",
                  off.tokens, on.tokens);
      return 1;
    }
  }
  bench::print_rule();
  std::printf("sharing maps a repeated prompt's cross blocks onto the live "
              "share and skips its\nencoder pass; 'saved' is the peak slab "
              "footprint reduction at equal outputs.\n");

  // -------------------------------------------------------------------
  // Part 2: beam search — DenseKvCache copies vs pooled CoW forks.
  // -------------------------------------------------------------------
  std::printf("\nPooled beam search — dense per-beam copies vs CoW forks "
              "(one sentence)\n");
  bench::print_rule('=');
  const int s_src = 40;
  const int max_len = 32;
  model::EncoderModel encoder(config, 29);
  model::Seq2SeqDecoder decoder(config, 29);
  Rng rng(0xBEA);
  Tensor ids = Tensor::owned(Shape{1, s_src}, DType::kI32);
  for (int s = 0; s < s_src; ++s) {
    ids.data<int32_t>()[s] = static_cast<int32_t>(rng.uniform_int(0, 499));
  }
  Tensor memory3 = encoder.forward(ids);  // [1, s_src, H]
  Tensor memory =
      Tensor::view(memory3.data<float>(), Shape{s_src, config.hidden});

  std::printf("%5s | %12s %16s %16s | %5s %5s\n", "beam", "dense KV (KB)",
              "pool peak (KB)", "pool unique(KB)", "forks", "CoW");
  for (const int beam : {2, 4, 8}) {
    const auto dense = decoder.decode(memory, max_len, 1, 2, beam);

    genserve::KvPoolOptions pool_opts;
    pool_opts.block_tokens = 8;
    pool_opts.blocks_per_slab = 16;
    genserve::KvCachePool pool(config, pool_opts);
    genserve::PooledBeamKv factory(&pool);
    const auto pooled = decoder.decode(memory, max_len, 1, 2, beam, &factory);
    const size_t peak_unique = pool.peak_blocks_in_use() * pool.block_bytes();

    // Dense beam search holds beam_size full self caches + one cross copy
    // set, every step, regardless of how much history the beams share.
    const size_t dense_bytes =
        static_cast<size_t>(beam) * config.num_layers *
            (static_cast<size_t>(max_len) * config.hidden * 2) *
            sizeof(float) +
        static_cast<size_t>(config.num_layers) *
            (static_cast<size_t>(s_src) * config.hidden * 2) * sizeof(float);
    std::printf("%5d | %12.1f %16.1f %16.1f | %5zu %5zu\n", beam,
                dense_bytes / kb, pool.stats().peak_device_bytes / kb,
                peak_unique / kb, pool.forks(), pool.cow_copies());
    if (pooled.tokens != dense.tokens || pooled.log_prob != dense.log_prob) {
      std::printf("  !! pooled beam diverged from dense — CoW must be "
                  "exact\n");
      return 1;
    }
  }
  bench::print_rule();
  std::printf("pooled forks share unchanged history; dense copies pay the "
              "full per-beam cache.\nboth paths produced identical "
              "hypotheses at every beam width.\n");
  return 0;
}
