// Optimistic admission + preempt-and-requeue vs worst-case reservation.
//
// The same oversubscribed generation burst runs through two servers that
// differ only in GenSchedulerOptions::optimistic_admission. Worst-case
// reservation admits a sequence only when its *full output budget* fits
// the pool, so blocks reserved for tokens that may never be generated sit
// idle exactly when the queue is deepest. Optimistic admission charges only
// today's blocks, packs the step batch to max_active, and absorbs the
// oversubscription by preempting victims when growth runs the pool dry —
// vLLM/PagedAttention's recomputation strategy over this repo's refcounted
// CoW block pool (parked tokens replay through still-resident cross
// blocks; no re-encode unless the share itself was evicted).
//
// Before any timing, every request's tokens are asserted bit-identical to
// an uncontended (unbounded-pool, never-preempted) reference run, and the
// pooled/dense beam equivalence is re-asserted so preemption changes
// nothing it shares machinery with. Those checks are always hard. The
// throughput/utilization gates demote to report-only under
// TURBO_BENCH_NO_GATE (shared CI runners have untrustworthy clocks).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "model/decoder.h"
#include "obs/passes.h"
#include "obs/trace_io.h"
#include "serving/request.h"

using namespace turbo;

namespace {

model::ModelConfig gen_config() {
  return model::ModelConfig::tiny(/*layers=*/2, /*hidden=*/64, /*heads=*/4,
                                  /*inter=*/128, /*vocab=*/500);
}

struct BurstResult {
  std::map<int64_t, std::vector<int>> tokens_by_id;
  size_t tokens = 0;
  double wall_s = 0.0;
  double mean_active = 0.0;       // mean step-batch size
  double mean_utilization = 0.0;  // mean blocks_in_use / max_blocks
  double peak_oversub = 0.0;      // peak blocks_reserved / max_blocks
  size_t preemptions = 0;
  size_t resumes = 0;
  size_t evictions = 0;
  size_t replayed = 0;            // re-derived (wasted) step slots
  int64_t iterations = 0;
};

BurstResult run_burst_once(
    const model::ModelConfig& config,
    const std::vector<serving::GenerationRequest>& requests, size_t max_bytes,
    bool optimistic) {
  genserve::GenServerOptions options;
  options.pool.block_tokens = 8;
  options.pool.blocks_per_slab = 8;
  options.pool.max_bytes = max_bytes;
  options.scheduler.max_active = 8;
  options.scheduler.optimistic_admission = optimistic;
  genserve::GenerationServer server(config, options, 29);
  const double max_blocks =
      max_bytes == 0 ? 0.0 : static_cast<double>(server.pool().max_blocks());

  BurstResult r;
  size_t active_sum = 0;
  size_t in_use_sum = 0;
  server.set_step_observer([&](const genserve::StepStats& s) {
    active_sum += static_cast<size_t>(s.active);
    in_use_sum += s.kv_blocks_in_use;
    r.replayed += static_cast<size_t>(s.replayed);
    if (max_blocks > 0.0) {
      r.peak_oversub =
          std::max(r.peak_oversub,
                   static_cast<double>(s.kv_blocks_reserved) / max_blocks);
    }
  });
  for (const auto& req : requests) server.submit(req);

  const auto t0 = std::chrono::steady_clock::now();
  const auto responses = server.run_to_completion();
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  TT_CHECK_EQ(responses.size(), requests.size());
  for (const auto& resp : responses) {
    r.tokens += resp.tokens.size();
    r.tokens_by_id[resp.request_id] = resp.tokens;
  }
  r.iterations = server.iterations();
  r.mean_active = r.iterations ? static_cast<double>(active_sum) /
                                     static_cast<double>(r.iterations)
                               : 0.0;
  r.mean_utilization =
      (r.iterations && max_blocks > 0.0)
          ? static_cast<double>(in_use_sum) /
                (static_cast<double>(r.iterations) * max_blocks)
          : 0.0;
  r.preemptions = server.scheduler().total_preempted();
  r.resumes = server.scheduler().total_resumed();
  r.evictions = server.scheduler().total_evicted();
  TT_CHECK_EQ(server.pool().stats().current_device_bytes, 0u);
  return r;
}

// Scheduling is single-threaded and fully deterministic — only the clock
// is noisy. Repeat the burst and keep the best wall time; everything else
// (tokens, preemptions, batch shapes) must come out identical every rep.
BurstResult run_burst(const model::ModelConfig& config,
                      const std::vector<serving::GenerationRequest>& requests,
                      size_t max_bytes, bool optimistic, int reps = 3) {
  BurstResult best = run_burst_once(config, requests, max_bytes, optimistic);
  for (int rep = 1; rep < reps; ++rep) {
    BurstResult r = run_burst_once(config, requests, max_bytes, optimistic);
    TT_CHECK(r.tokens_by_id == best.tokens_by_id);
    TT_CHECK_EQ(r.preemptions, best.preemptions);
    TT_CHECK_EQ(r.iterations, best.iterations);
    if (r.wall_s < best.wall_s) best = std::move(r);
  }
  return best;
}

}  // namespace

int main() {
  const auto config = gen_config();
  const bool gate = std::getenv("TURBO_BENCH_NO_GATE") == nullptr;

  // The serving regime optimistic admission exists for: every request
  // carries a generous output budget (max_new_tokens = 64, what worst-case
  // admission must reserve) while actual generations stop far earlier.
  // A deterministic pre-pass discovers each request's natural generation
  // and picks its EOS id from the tokens it actually produces (first
  // occurrence nearest a target length ~ U(6,20)), so "stops early" is a
  // property of the model's own greedy trajectory — identical in every
  // run, preempted or not.
  const int num_requests = 48;
  const int budget = 64;
  Rng rng(0xFA57);
  std::vector<serving::GenerationRequest> requests;
  for (int i = 0; i < num_requests; ++i) {
    serving::GenerationRequest r;
    r.id = i;
    const int len = static_cast<int>(rng.uniform_int(6, 16));
    r.src_tokens = rng.token_ids(len, 500);
    r.max_new_tokens = budget;
    r.eos_id = 2;  // pre-pass: never fires in the random-weight model
    requests.push_back(std::move(r));
  }
  {
    const BurstResult probe_run = run_burst(config, requests, /*max_bytes=*/0,
                                            /*optimistic=*/false, /*reps=*/1);
    for (auto& r : requests) {
      const auto& toks = probe_run.tokens_by_id.at(r.id);
      const int target =
          static_cast<int>(rng.uniform_int(8, 24));
      int best_tok = -1;
      int best_dist = 1 << 30;
      std::map<int, int> first_occurrence;
      for (size_t k = 0; k < toks.size(); ++k) {
        first_occurrence.emplace(toks[k], static_cast<int>(k));
      }
      for (const auto& [tok, first] : first_occurrence) {
        const int dist = std::abs(first - target);
        if (dist < best_dist) {
          best_dist = dist;
          best_tok = tok;
        }
      }
      TT_CHECK_GE(best_tok, 0);
      r.eos_id = best_tok;  // generation now ends at its first occurrence
    }
  }

  // Uncontended reference: unbounded pool, worst-case admission, never a
  // preemption. Its per-request tokens are the bit-identity baseline.
  const BurstResult reference =
      run_burst(config, requests, /*max_bytes=*/0, /*optimistic=*/false);

  // Pool of 32 blocks: one worst-case reservation (~18-20 blocks: cross
  // ceil(src/8)*2 + self ceil(64/8)*2) fits, two never do — worst-case
  // admission serializes the burst while actual usage (~6-10 blocks per
  // live sequence) would happily fit four.
  genserve::KvPoolOptions probe_opts;
  probe_opts.block_tokens = 8;
  probe_opts.blocks_per_slab = 8;
  genserve::KvCachePool probe(config, probe_opts);
  double worst8 = 0.0;  // worst case of a full eight-deep step batch
  for (int i = 0; i < 8; ++i) {
    worst8 += static_cast<double>(
        probe.blocks_for(static_cast<int>(requests[i].src_tokens.size()),
                         requests[i].max_new_tokens));
  }
  const size_t slab_blocks = 8;
  const size_t slabs = 4;
  const size_t max_bytes = slabs * slab_blocks * probe.block_bytes();

  const BurstResult worst =
      run_burst(config, requests, max_bytes, /*optimistic=*/false);
  const BurstResult opt =
      run_burst(config, requests, max_bytes, /*optimistic=*/true);

  // Bit-identity (always hard): preempted-and-resumed sequences must
  // reproduce the uncontended run exactly, token for token.
  for (const auto& [id, toks] : reference.tokens_by_id) {
    TT_CHECK_MSG(worst.tokens_by_id.at(id) == toks,
                 "worst-case run diverged on request " << id);
    TT_CHECK_MSG(opt.tokens_by_id.at(id) == toks,
                 "optimistic (preempted) run diverged on request " << id);
  }
  TT_CHECK_GT(opt.preemptions, 0u);  // the contention was real

  size_t actual_tokens = 0;
  for (const auto& [id, toks] : reference.tokens_by_id) {
    actual_tokens += toks.size();
  }
  const double oversub =
      worst8 / static_cast<double>(slabs * slab_blocks);
  std::printf("KV preemption — %d requests, src U(6,16), budget %d tokens "
              "(actual mean %.1f), pool %zu blocks\n",
              num_requests, budget,
              static_cast<double>(actual_tokens) / num_requests,
              slabs * slab_blocks);
  std::printf("step-batch worst-case reservation: %.0f blocks = %.1fx pool "
              "capacity\n",
              worst8, oversub);
  bench::print_rule('=');
  std::printf("%-12s | %9s %9s %9s | %8s %8s | %6s %6s %6s %7s\n", "admission",
              "tok/s", "wall ms", "iters", "batch", "util", "preempt",
              "resume", "evict", "replay");
  const auto row = [](const char* name, const BurstResult& r) {
    std::printf("%-12s | %9.0f %9.1f %9lld | %8.2f %7.1f%% | %6zu %6zu %6zu "
                "%7zu\n",
                name, static_cast<double>(r.tokens) / r.wall_s,
                r.wall_s * 1e3, static_cast<long long>(r.iterations),
                r.mean_active, 100.0 * r.mean_utilization, r.preemptions,
                r.resumes, r.evictions, r.replayed);
  };
  row("worst-case", worst);
  row("optimistic", opt);
  bench::print_rule();
  const double util_gain = opt.mean_utilization / worst.mean_utilization;
  const double tput_gain =
      (static_cast<double>(opt.tokens) / opt.wall_s) /
      (static_cast<double>(worst.tokens) / worst.wall_s);
  std::printf("optimistic vs worst-case: %.2fx sustained pool utilization, "
              "%.2fx completed-tokens/s\n",
              util_gain, tput_gain);
  std::printf("peak reservation oversubscription: worst-case %.2fx (capped "
              "at 1.0), optimistic %.2fx\n",
              worst.peak_oversub, opt.peak_oversub);
  std::printf("outputs bit-identical to the uncontended run across all %d "
              "requests in both modes.\n",
              num_requests);

  // Traced replay of the optimistic burst (untimed). Tracing must not
  // change a single token, and the offline phase attribution must explain
  // >= 95% of the measured step wall-time — both structural properties of
  // the instrumentation, independent of the runner's clock quality, so
  // these gates stay hard even under TURBO_BENCH_NO_GATE.
  {
    genserve::GenServerOptions options;
    options.pool.block_tokens = 8;
    options.pool.blocks_per_slab = 8;
    options.pool.max_bytes = max_bytes;
    options.scheduler.max_active = 8;
    options.scheduler.optimistic_admission = true;
    options.trace.enabled = true;
    genserve::GenerationServer server(config, options, 29);
    for (const auto& req : requests) server.submit(req);
    const auto responses = server.run_to_completion();
    TT_CHECK_EQ(responses.size(), requests.size());
    for (const auto& resp : responses) {
      TT_CHECK_MSG(reference.tokens_by_id.at(resp.request_id) == resp.tokens,
                   "traced run diverged on request " << resp.request_id);
    }
    const std::vector<obs::TraceSpan> spans = server.trace_spans();
    TT_CHECK_EQ(server.trace_ring()->dropped(), 0u);
    const obs::PhaseAttribution attr = obs::attribute_phases(spans);
    std::printf("\n");
    std::fputs(obs::render_trace_summary(spans).c_str(), stdout);
    TT_CHECK_GE(attr.iterations, static_cast<size_t>(opt.iterations));
    TT_CHECK_GE(attr.coverage, 0.95);
    // Dump for offline tooling (tools/trace_report consumes this in CI).
    if (const char* out = std::getenv("TURBO_TRACE_OUT")) {
      obs::write_trace_file(out, spans);
      std::printf("trace written to %s (%zu spans)\n", out, spans.size());
    }
  }

  // Timing/utilization gates: report-only under TURBO_BENCH_NO_GATE.
  if (gate) {
    TT_CHECK_GE(oversub, 1.5);         // the workload really oversubscribes
    TT_CHECK_GT(util_gain, 1.0);       // higher sustained pool utilization
    TT_CHECK_GE(tput_gain, 1.0);       // and no throughput regression
  } else {
    std::printf("(gates skipped: TURBO_BENCH_NO_GATE set)\n");
  }
  return 0;
}
