// Sharded replica serving: SLO-aware routing vs round-robin, under a
// skewed bursty multi-tenant trace.
//
// One model, three live engine replicas behind the router (src/router/):
// every replica has its own KV pool charged against one shared slab
// budget, and the Router places each request on live signals — KV
// pressure, queue depth, observed per-step cost — honoring the SLO class
// carried by GenerationRequest::priority. The trace mixes three tenants
// on the same model: a latency-critical trickle (tight SLO, short
// prompts, bursty), a standard interactive stream, and a batch backfill
// tenant with deep prompts and generous output budgets.
//
// Metric: goodput — tokens of requests that finished within their SLO
// deadline, per second. Deadlines are virtual-step budgets scaled from
// each request's own uncontended service time (class-dependent stretch +
// slack), so attainment is deterministic: the same placements always
// attain the same set. The gate (demoted to report-only under
// TURBO_BENCH_NO_GATE) requires SLO-aware placement to attain at least as
// many tight-class tokens and strictly more SLO-weighted tokens overall
// than round-robin.
//
// Always hard, gate or no gate:
//  * Every routed run is bit-identical, request for request, to the
//    dedicated single-engine reference — placement and preemption must
//    never change tokens.
//  * replicas=1 under the default policy reproduces the reference
//    exactly (the pre-replica serving path).
//  * Every submit produces exactly one kRoute span on the shared ring —
//    the routing decision is attributable per request.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "genserve/model_bundle.h"
#include "genserve/multi_model_server.h"
#include "obs/trace.h"
#include "obs/trace_io.h"
#include "serving/request.h"
#include "serving/routing_policy.h"

using namespace turbo;

namespace {

constexpr int kReplicas = 3;

model::ModelConfig chat_config() {
  return model::ModelConfig::tiny(/*layers=*/2, /*hidden=*/64, /*heads=*/4,
                                  /*inter=*/128, /*vocab=*/500);
}

genserve::GenServerOptions engine_options() {
  genserve::GenServerOptions o;
  o.pool.block_tokens = 8;
  o.pool.blocks_per_slab = 8;
  o.scheduler.max_active = 6;
  o.scheduler.optimistic_admission = true;
  return o;
}

// Deadline budget in virtual steps: stretch x the request's own
// uncontended service steps, plus slack. Tighter classes get less of
// both.
double slo_stretch(serving::SloClass c) {
  switch (c) {
    case serving::SloClass::kTight: return 2.0;
    case serving::SloClass::kStandard: return 4.0;
    case serving::SloClass::kBatch: return 10.0;
  }
  return 4.0;
}
double slo_slack(serving::SloClass c) {
  switch (c) {
    case serving::SloClass::kTight: return 6.0;
    case serving::SloClass::kStandard: return 24.0;
    case serving::SloClass::kBatch: return 120.0;
  }
  return 24.0;
}

struct RunResult {
  std::map<int64_t, std::vector<int>> tokens_by_id;
  std::map<int64_t, int64_t> finish_step;  // driver step of completion
  double wall_s = 0.0;
  int64_t steps = 0;
  size_t preemptions = 0;
  size_t fallbacks = 0;        // router.denial_fallbacks
  size_t route_spans = 0;      // kRoute spans on the shared ring
  std::vector<size_t> routed;  // per-replica routed counts
};

// Dedicated uncontended single-engine reference (also the service-time
// probe for deadlines and the natural-EOS pre-pass).
RunResult run_reference(const std::shared_ptr<genserve::ModelBundle>& bundle,
                        const std::vector<bench::TracedRequest>& trace) {
  genserve::GenerationServer server(bundle, engine_options());
  for (const auto& t : trace) {
    serving::GenerationRequest r = t.request;
    r.model.clear();
    server.submit(std::move(r));
  }
  RunResult res;
  for (auto& resp : server.run_to_completion()) {
    res.tokens_by_id[resp.request_id] = std::move(resp.tokens);
  }
  return res;
}

// Routed run: N replicas behind the Router, requests submitted at their
// virtual arrival steps, one server iteration per step. dump_trace
// writes the run's span ring to $TURBO_TRACE_OUT for tools/trace_report
// (placement is deterministic, so re-dumps across best_of reps are
// identical up to timestamps).
RunResult run_routed(const std::shared_ptr<genserve::ModelBundle>& bundle,
                     const std::vector<bench::TracedRequest>& trace,
                     serving::DispatchPolicy policy, int replicas,
                     size_t total_budget, bool dump_trace = false) {
  genserve::MultiModelOptions options;
  options.engine = engine_options();
  options.engine.trace.enabled = true;
  options.total_kv_bytes = total_budget;
  options.replicas_per_model = replicas;
  options.router.policy = policy;
  // Trace replay asserts placement determinism across reps; the
  // wall-clock cost observation would jitter it on homogeneous replicas.
  options.router.use_observed_cost = false;
  genserve::MultiModelGenerationServer server(options);
  server.register_bundle(bundle, total_budget);

  RunResult res;
  size_t next = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (next < trace.size() || !server.idle()) {
    while (next < trace.size() &&
           trace[next].arrival_step <= res.steps) {
      server.submit(trace[next].request);
      ++next;
    }
    server.step();
    ++res.steps;
    for (auto& resp : server.take_completed()) {
      res.finish_step[resp.request_id] = res.steps;
      res.tokens_by_id[resp.request_id] = std::move(resp.tokens);
    }
  }
  res.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  for (const auto& s : server.stats()) res.preemptions += s.pool.preemptions;
  res.fallbacks = static_cast<size_t>(
      server.metrics()->counter_value("router.denial_fallbacks"));
  const std::string label = bundle->label();
  for (int r = 0; r < replicas; ++r) {
    const std::string rl = r == 0 ? label : label + "#" + std::to_string(r);
    res.routed.push_back(static_cast<size_t>(
        server.metrics()->counter_value("router." + rl + ".routed")));
  }
  const std::vector<obs::TraceSpan> spans = server.trace_spans();
  for (const auto& span : spans) {
    if (span.kind == obs::SpanKind::kRoute) ++res.route_spans;
  }
  if (dump_trace) {
    if (const char* out = std::getenv("TURBO_TRACE_OUT")) {
      obs::write_trace_file(out, spans);
      std::printf("trace written to %s (%zu spans)\n", out, spans.size());
    }
  }
  return res;
}

// Scheduling and placement are deterministic; only the clock is noisy.
template <typename Fn>
RunResult best_of(Fn&& run, int reps = 3) {
  RunResult best = run();
  for (int rep = 1; rep < reps; ++rep) {
    RunResult r = run();
    TT_CHECK(r.tokens_by_id == best.tokens_by_id);
    TT_CHECK(r.finish_step == best.finish_step);
    if (r.wall_s < best.wall_s) best = std::move(r);
  }
  return best;
}

struct Goodput {
  size_t attained_tokens = 0;  // tokens of requests inside their deadline
  size_t total_tokens = 0;
  size_t attained_tight = 0;   // tight-class attained tokens
  size_t tight_tokens = 0;
  size_t attained_requests = 0;
};

Goodput goodput_of(const RunResult& run, const RunResult& ref,
                   const std::vector<bench::TracedRequest>& trace) {
  Goodput g;
  for (const auto& t : trace) {
    const int64_t id = t.request.id;
    const auto klass = serving::slo_class_of(t.request.priority);
    const size_t toks = ref.tokens_by_id.at(id).size();
    // Uncontended service time: one fused step per generated token.
    const double deadline =
        static_cast<double>(t.arrival_step) +
        slo_stretch(klass) * static_cast<double>(toks) + slo_slack(klass);
    const bool attained =
        static_cast<double>(run.finish_step.at(id)) <= deadline;
    g.total_tokens += toks;
    if (klass == serving::SloClass::kTight) g.tight_tokens += toks;
    if (attained) {
      g.attained_tokens += toks;
      ++g.attained_requests;
      if (klass == serving::SloClass::kTight) g.attained_tight += toks;
    }
  }
  return g;
}

}  // namespace

int main() {
  const bool gate = std::getenv("TURBO_BENCH_NO_GATE") == nullptr;
  auto bundle = genserve::make_bundle("chat", 1, chat_config(), 77);

  // Skewed bursty multi-tenant trace on one model: a tight-SLO trickle, a
  // standard interactive stream, and a deep-prompt batch backfill tenant.
  Rng rng(0x5107);
  bench::TenantSpec tight;
  tight.requests = 24;
  tight.id_base = 0;
  tight.src_lo = 4;
  tight.src_hi = 8;
  tight.max_new_tokens = 16;
  tight.priority = 2;
  tight.burst = 3;
  tight.period = 5;
  bench::TenantSpec standard;
  standard.requests = 36;
  standard.id_base = 1000;
  standard.src_lo = 6;
  standard.src_hi = 14;
  standard.max_new_tokens = 32;
  standard.priority = 0;
  standard.burst = 6;
  standard.period = 7;
  bench::TenantSpec batch;
  batch.requests = 16;
  batch.id_base = 2000;
  batch.src_lo = 10;
  batch.src_hi = 20;
  batch.max_new_tokens = 48;
  batch.priority = -1;
  batch.burst = 8;
  batch.period = 20;
  std::vector<bench::TracedRequest> trace =
      bench::make_multi_tenant_trace({tight, standard, batch}, rng);

  // Natural EOS per request (deterministic early finishes), targeted from
  // each request's own uncontended trajectory.
  {
    RunResult probe = run_reference(bundle, trace);
    std::vector<serving::GenerationRequest> reqs;
    for (const auto& t : trace) reqs.push_back(t.request);
    bench::assign_natural_eos(reqs, probe.tokens_by_id, rng, 6, 20);
    for (size_t i = 0; i < trace.size(); ++i) trace[i].request = reqs[i];
  }
  const RunResult ref = run_reference(bundle, trace);

  // Budget: enough for ~half the worst case, so replicas contend and the
  // denial fallback has something to dodge.
  const size_t slab = static_cast<size_t>(8) * 8 *
                      chat_config().kv_bytes_per_token() /
                      chat_config().num_layers;
  const size_t total_budget = 8 * slab;

  const RunResult rr = best_of([&] {
    return run_routed(bundle, trace, serving::DispatchPolicy::kRoundRobin,
                      kReplicas, total_budget);
  });
  const RunResult slo = best_of([&] {
    return run_routed(bundle, trace, serving::DispatchPolicy::kSloAware,
                      kReplicas, total_budget, /*dump_trace=*/true);
  });
  const RunResult single = run_routed(
      bundle, trace, serving::DispatchPolicy::kSloAware, 1, total_budget);

  // Bit-identity (always hard): placement, replication, and preemption
  // must never change a request's tokens.
  for (const auto& [id, toks] : ref.tokens_by_id) {
    TT_CHECK_MSG(rr.tokens_by_id.at(id) == toks,
                 "round-robin run diverged on request " << id);
    TT_CHECK_MSG(slo.tokens_by_id.at(id) == toks,
                 "slo-aware run diverged on request " << id);
    TT_CHECK_MSG(single.tokens_by_id.at(id) == toks,
                 "single-replica run diverged on request " << id);
  }
  // Attribution (always hard): one kRoute span per submitted request.
  TT_CHECK_EQ(rr.route_spans, trace.size());
  TT_CHECK_EQ(slo.route_spans, trace.size());
  TT_CHECK_EQ(single.route_spans, trace.size());

  const Goodput g_rr = goodput_of(rr, ref, trace);
  const Goodput g_slo = goodput_of(slo, ref, trace);

  std::printf("replica routing — %d replicas, %zu requests "
              "(%d tight / %d standard / %d batch), budget %zu KB\n",
              kReplicas, trace.size(), tight.requests, standard.requests,
              batch.requests, total_budget / 1024);
  bench::print_rule('=');
  std::printf("%-12s | %9s %9s | %9s %9s | %8s %8s | %s\n", "policy",
              "goodput/s", "tok/s", "attained", "tight", "preempt",
              "fallbk", "routed per replica");
  const auto row = [&](const char* name, const RunResult& r,
                       const Goodput& g) {
    std::string spread;
    for (size_t n : r.routed) spread += std::to_string(n) + " ";
    std::printf("%-12s | %9.0f %9.0f | %6zu/%-2zu %6zu/%-3zu | %8zu %8zu "
                "| %s\n",
                name, static_cast<double>(g.attained_tokens) / r.wall_s,
                static_cast<double>(g.total_tokens) / r.wall_s,
                g.attained_requests, trace.size(), g.attained_tight,
                g.tight_tokens, r.preemptions, r.fallbacks, spread.c_str());
  };
  row("round-robin", rr, g_rr);
  row("slo-aware", slo, g_slo);
  bench::print_rule();
  std::printf("slo-aware vs round-robin: %zu vs %zu SLO-attained tokens "
              "(%zu vs %zu tight), %lld vs %lld driver steps\n",
              g_slo.attained_tokens, g_rr.attained_tokens,
              g_slo.attained_tight, g_rr.attained_tight,
              static_cast<long long>(slo.steps),
              static_cast<long long>(rr.steps));
  std::printf("outputs bit-identical to the dedicated single-engine "
              "reference in all modes (replicas=1 included).\n");

  if (gate) {
    // Goodput: SLO-aware must beat round-robin on attained tokens and
    // never lose tight-class tokens (both counts are deterministic).
    TT_CHECK_GT(g_slo.attained_tokens, g_rr.attained_tokens);
    TT_CHECK_GE(g_slo.attained_tight, g_rr.attained_tight);
  } else {
    std::printf("(goodput gates skipped: TURBO_BENCH_NO_GATE set; "
                "bit-identity stays hard)\n");
  }
  return 0;
}
