// Figure 7: batching gain for base BERT serving on RTX 2060 — per-request
// latency of a batch of N requests, normalized to the latency of a single
// request, for sequence lengths 10..200 and batch sizes 1..15.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace turbo;

int main() {
  const auto spec = gpusim::DeviceSpec::rtx2060();
  const auto model = bench::bert_base();
  const auto profile = perfmodel::RuntimeProfile::turbo();
  const std::vector<int> lens = {10, 20, 30, 50, 100, 200};

  std::printf(
      "Figure 7 — normalized per-request latency vs batch size (BERT base, "
      "%s)\n",
      spec.name.c_str());
  bench::print_rule('=');
  std::printf("batch ");
  for (int len : lens) std::printf("  seq_len=%-4d", len);
  std::printf("\n");

  std::vector<double> single;
  for (int len : lens) {
    single.push_back(
        perfmodel::encoder_latency_ms(model, 1, len, profile, spec));
  }
  for (int batch = 1; batch <= 15; ++batch) {
    std::printf("%5d ", batch);
    for (size_t li = 0; li < lens.size(); ++li) {
      const double per_request =
          perfmodel::encoder_latency_ms(model, batch, lens[li], profile,
                                        spec) /
          batch;
      std::printf("  %12.3f", per_request / single[li]);
    }
    std::printf("\n");
  }
  std::printf(
      "\n(values < 1: batching amortizes launch overhead and fills the "
      "GPU; the gain is largest for short sequences, as in the paper)\n");
  return 0;
}
