// Tracing overhead on the generation step loop: tokens/s with the obs
// trace ring off vs on.
//
// The design contract (obs/trace.h) is that tracing costs one never-taken
// branch per recording site when off, and a handful of clock reads plus
// lock-free ring appends per step when on. This bench measures both sides
// on the same deterministic burst: identical requests, identical
// scheduling, the only difference is GenServerOptions::trace.enabled.
//
// Token streams are asserted bit-identical between the modes (always
// hard — tracing must be a pure observer). The <= 2% tokens/s overhead
// gate demotes to report-only under TURBO_BENCH_NO_GATE, like every other
// timing gate in this repo (shared CI runners have untrustworthy clocks).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "serving/request.h"

using namespace turbo;

namespace {

struct RunResult {
  std::map<int64_t, std::vector<int>> tokens_by_id;
  size_t tokens = 0;
  double wall_s = 0.0;
  int64_t iterations = 0;
  size_t spans = 0;
  size_t dropped = 0;
};

RunResult run_once(const model::ModelConfig& config,
                   const std::vector<serving::GenerationRequest>& requests,
                   bool traced) {
  genserve::GenServerOptions options;
  options.pool.block_tokens = 8;
  options.pool.blocks_per_slab = 8;
  options.scheduler.max_active = 8;
  options.trace.enabled = traced;
  genserve::GenerationServer server(config, options, 29);
  for (const auto& req : requests) server.submit(req);

  RunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  const auto responses = server.run_to_completion();
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  TT_CHECK_EQ(responses.size(), requests.size());
  for (const auto& resp : responses) {
    r.tokens += resp.tokens.size();
    r.tokens_by_id[resp.request_id] = resp.tokens;
  }
  r.iterations = server.iterations();
  if (server.trace_ring()) {
    r.spans = server.trace_spans().size();
    r.dropped = static_cast<size_t>(server.trace_ring()->dropped());
  }
  return r;
}

}  // namespace

int main() {
  const auto config = model::ModelConfig::tiny(/*layers=*/2, /*hidden=*/64,
                                               /*heads=*/4, /*inter=*/128,
                                               /*vocab=*/500);
  const bool gate = std::getenv("TURBO_BENCH_NO_GATE") == nullptr;

  const int num_requests = 32;
  Rng rng(0x0B5E);
  std::vector<serving::GenerationRequest> requests;
  for (int i = 0; i < num_requests; ++i) {
    serving::GenerationRequest r;
    r.id = i;
    r.src_tokens = rng.token_ids(static_cast<int>(rng.uniform_int(6, 16)),
                                 500);
    r.max_new_tokens = 24;
    r.eos_id = 2;  // effectively never fires in the random-weight model
    requests.push_back(std::move(r));
  }

  // Interleave the modes and keep each side's best wall time: scheduling
  // is deterministic (identical token streams every rep), so best-of-N
  // isolates the clock from scheduler noise on shared machines.
  const int reps = 7;
  RunResult off = run_once(config, requests, /*traced=*/false);
  RunResult on = run_once(config, requests, /*traced=*/true);
  TT_CHECK(off.tokens_by_id == on.tokens_by_id);  // tracing is a pure observer
  for (int rep = 1; rep < reps; ++rep) {
    RunResult o = run_once(config, requests, /*traced=*/false);
    RunResult t = run_once(config, requests, /*traced=*/true);
    TT_CHECK(o.tokens_by_id == off.tokens_by_id);
    TT_CHECK(t.tokens_by_id == off.tokens_by_id);
    if (o.wall_s < off.wall_s) off = std::move(o);
    if (t.wall_s < on.wall_s) on = std::move(t);
  }
  TT_CHECK_EQ(on.dropped, 0u);  // ring sized for the whole burst

  const double tps_off = static_cast<double>(off.tokens) / off.wall_s;
  const double tps_on = static_cast<double>(on.tokens) / on.wall_s;
  const double overhead = tps_off / tps_on - 1.0;
  const double per_span_ns =
      on.spans > 0
          ? (on.wall_s - off.wall_s) * 1e9 / static_cast<double>(on.spans)
          : 0.0;

  std::printf("tracing overhead — %d requests, %zu tokens, %lld iterations, "
              "best of %d\n",
              num_requests, off.tokens, static_cast<long long>(off.iterations),
              reps);
  bench::print_rule('=');
  std::printf("%-12s | %10s %10s | %8s %8s\n", "trace", "tok/s", "wall ms",
              "spans", "dropped");
  std::printf("%-12s | %10.0f %10.2f | %8s %8s\n", "off", tps_off,
              off.wall_s * 1e3, "-", "-");
  std::printf("%-12s | %10.0f %10.2f | %8zu %8zu\n", "on", tps_on,
              on.wall_s * 1e3, on.spans, on.dropped);
  bench::print_rule();
  std::printf("overhead: %.2f%% tokens/s (%.0f ns/span apparent)\n",
              100.0 * overhead, per_span_ns);
  std::printf("token streams bit-identical across modes and reps.\n");

  if (gate) {
    TT_CHECK_MSG(overhead <= 0.02,
                 "tracing-enabled throughput degraded by "
                     << 100.0 * overhead << "% (budget 2%)");
  } else {
    std::printf("(gate skipped: TURBO_BENCH_NO_GATE set)\n");
  }
  return 0;
}
