// Figure 14: fixed-length BERT inference on RTX 2060 — speedup of Turbo
// (and Turbo-TC) relative to PyTorch, onnxruntime-gpu, TensorFlow-XLA,
// FasterTransformers and TensorRT over the paper's (batch, length) grid.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"

using namespace turbo;
using perfmodel::RuntimeProfile;

int main() {
  const auto spec = gpusim::DeviceSpec::rtx2060();
  const auto model = bench::bert_base();
  const std::vector<int> batches = {1, 20};
  const std::vector<int> lens = {10, 20, 40, 60, 80, 100, 200, 300, 400, 500};

  const std::vector<RuntimeProfile> others = {
      RuntimeProfile::pytorch(), RuntimeProfile::onnxruntime(),
      RuntimeProfile::tf_xla(), RuntimeProfile::faster_transformers(),
      RuntimeProfile::tensorrt()};

  std::printf("Figure 14 — fixed-length BERT inference speedups (%s)\n",
              spec.name.c_str());
  bench::print_rule('=');
  std::printf("%-12s", "(bs, seq)");
  for (const auto& p : others) std::printf(" %18s", p.name.c_str());
  std::printf(" %18s\n", "Turbo-TC/Turbo");

  std::vector<std::vector<double>> speedups(others.size());
  std::vector<double> tc_speedups;
  for (int bs : batches) {
    for (int len : lens) {
      const double turbo = perfmodel::encoder_latency_ms(
          model, bs, len, RuntimeProfile::turbo(), spec);
      std::printf("(%2d, %4d)  ", bs, len);
      for (size_t i = 0; i < others.size(); ++i) {
        const double other =
            perfmodel::encoder_latency_ms(model, bs, len, others[i], spec);
        speedups[i].push_back(other / turbo);
        std::printf(" %17.2fx", other / turbo);
      }
      const double tc = perfmodel::encoder_latency_ms(
          model, bs, len, RuntimeProfile::turbo_tc(), spec);
      tc_speedups.push_back(turbo / tc);
      std::printf(" %17.2fx\n", turbo / tc);
    }
  }
  bench::print_rule();
  std::printf("Turbo speedup summary (min-max, avg):\n");
  for (size_t i = 0; i < others.size(); ++i) {
    std::printf("  vs %-20s %.2fx-%.2fx, avg %.2fx\n",
                others[i].name.c_str(),
                *std::min_element(speedups[i].begin(), speedups[i].end()),
                *std::max_element(speedups[i].begin(), speedups[i].end()),
                mean(speedups[i]));
  }
  std::printf(
      "(paper: vs PyTorch 1.23-2.77 avg 1.54; vs onnxruntime 1.01-1.26 avg "
      "1.11; vs XLA 1.03-1.31 avg 1.11; vs FasterTransformers 0.71-1.32 avg "
      "0.91; vs TensorRT 0.53-0.96 avg 0.87)\n");
  return 0;
}
