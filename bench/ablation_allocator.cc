// Ablation: the model-aware allocator's chunk size (default 2 MB), K_SCALE
// (default 1.2) and idle-release grace, over a BERT trace with lengths
// U(5, 500). Reports peak footprint and total alloc/free traffic.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "graph/builders.h"
#include "memory/model_aware_allocator.h"

using namespace turbo;

namespace {

struct TraceResult {
  double peak_mb = 0;
  double traffic_mb = 0;
  double avg_plan_us = 0;
};

TraceResult run_trace(const memory::ModelAwareOptions& options,
                      const std::vector<int>& lens,
                      const graph::Graph& layer) {
  memory::ModelAwareAllocator alloc(options);
  TraceResult out;
  const double mb = 1024.0 * 1024.0;
  for (int len : lens) {
    const auto plan = alloc.begin_inference(layer.tensor_usages(1, len));
    out.peak_mb = std::max(out.peak_mb, plan.footprint_bytes / mb);
    out.traffic_mb += plan.traffic_bytes() / mb;
    out.avg_plan_us += plan.planning_us;
  }
  out.avg_plan_us /= static_cast<double>(lens.size());
  return out;
}

}  // namespace

int main() {
  const graph::Graph layer = graph::build_encoder_layer_fused({768, 12, 3072});
  Rng rng(0xAB1);
  std::vector<int> lens;
  for (int i = 0; i < 100; ++i) {
    lens.push_back(static_cast<int>(rng.uniform_int(5, 500)));
  }

  std::printf("Ablation — model-aware allocator parameters (BERT trace)\n");
  bench::print_rule('=');
  std::printf("%-34s %12s %14s %12s\n", "configuration", "peak MB",
              "traffic MB", "plan us");

  for (size_t chunk_mb : {1, 2, 4, 8}) {
    memory::ModelAwareOptions o;
    o.default_chunk_size = chunk_mb << 20;
    const auto r = run_trace(o, lens, layer);
    std::printf("chunk=%zuMB k=1.2 idle=0            %12.2f %14.2f %12.2f\n",
                chunk_mb, r.peak_mb, r.traffic_mb, r.avg_plan_us);
  }
  for (double k : {1.0, 1.2, 1.5, 2.0}) {
    memory::ModelAwareOptions o;
    o.k_scale = k;
    const auto r = run_trace(o, lens, layer);
    std::printf("chunk=2MB k=%.1f idle=0            %12.2f %14.2f %12.2f\n",
                k, r.peak_mb, r.traffic_mb, r.avg_plan_us);
  }
  for (int idle : {0, 2, 8}) {
    memory::ModelAwareOptions o;
    o.max_idle_inferences = idle;
    const auto r = run_trace(o, lens, layer);
    std::printf("chunk=2MB k=1.2 idle=%-2d            %12.2f %14.2f %12.2f\n",
                idle, r.peak_mb, r.traffic_mb, r.avg_plan_us);
  }
  std::printf(
      "\n(larger chunks / idle grace trade footprint for less device "
      "traffic; the paper's 2MB / 1.2 / immediate-release sits at the knee)\n");
  return 0;
}
