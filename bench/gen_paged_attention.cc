// Paged KV attention: block-iterating vs row-pointer fused decode.
//
// Part 1 measures one fused decode step (the generation-serving hot path)
// over pooled KV caches at fixed context lengths and batch sizes, with the
// decoder's attention walking the history two ways:
//
//  * rows  — the pre-paging baseline: two virtual row lookups per cached
//    token per layer (a pointer gather before every head loop);
//  * paged — block-extent iteration: the cache hands the decoder one
//    contiguous [ptr, rows] span per pool block, and the span kernels
//    (kernels/paged_qk_dot / paged_av_accumulate) stream each block's rows
//    gather-free, once past all heads.
//
// Both paths execute identical arithmetic in identical order, so logits
// are asserted bit-equal before anything is timed. Throughput should favor
// the paged path as context grows: the row path's per-token virtual calls
// and pointer chasing scale with context, the span path's per-block
// overhead scales with context / block_tokens.
//
// Part 2 re-asserts end-to-end bit-identity on whole decodes — greedy and
// beam, dense and pooled caches, both attention paths — the acceptance
// gate for swapping the default path.
#include <algorithm>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "genserve/kv_cache_pool.h"
#include "model/decoder.h"
#include "tensor/tensor.h"

using namespace turbo;
using AttnPath = model::Seq2SeqDecoder::AttentionPath;

namespace {

// Serving-sized decoder slice: big enough that attention dominates the
// step, small enough to run in seconds on CPU.
model::ModelConfig bench_config() {
  return model::ModelConfig::tiny(/*layers=*/2, /*hidden=*/256, /*heads=*/8,
                                  /*inter=*/512, /*vocab=*/1000);
}

double time_steps(model::Seq2SeqDecoder& decoder, AttnPath path,
                  const std::vector<model::Seq2SeqDecoder::StepSlot>& slots,
                  float* logits, model::DecodeWorkspace& ws, int iters) {
  decoder.set_attention_path(path);
  decoder.step(slots, logits, ws);  // warm-up (fills caches' row `ctx`)
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) decoder.step(slots, logits, ws);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
}

}  // namespace

int main() {
  const auto config = bench_config();
  model::Seq2SeqDecoder decoder(config, 29);
  const int H = config.hidden;
  const int vocab = config.vocab;
  const int s_src = 24;
  const int measure_iters = 20;

  std::printf("Paged KV attention — block-iterating vs row-pointer fused "
              "decode\n");
  std::printf("model: L=%d H=%d heads=%d vocab=%d; pool block_tokens=16, "
              "src len %d; %d timed steps/cell\n",
              config.num_layers, H, config.heads, vocab, s_src,
              measure_iters);
  bench::print_rule('=');
  std::printf("%5s %6s | %12s %12s %9s | %12s\n", "ctx", "batch",
              "rows ms/step", "paged ms/step", "speedup", "paged tok/s");

  genserve::KvPoolOptions pool_opts;
  pool_opts.block_tokens = 16;
  pool_opts.blocks_per_slab = 32;

  Rng rng(0xBEEF);
  double worst_speedup_512 = 1e9;
  double log_speedup_sum_512 = 0.0;
  int cells_512 = 0;
  for (const int ctx : {128, 512, 1024}) {
    for (const int batch : {1, 4, 8}) {
      genserve::KvCachePool pool(config, pool_opts);
      std::vector<std::unique_ptr<genserve::SequenceKv>> caches;
      std::vector<model::Seq2SeqDecoder::StepSlot> slots;
      for (int b = 0; b < batch; ++b) {
        auto kv = pool.admit(b, s_src, ctx + 1);
        // Prefill rows [0, ctx) and the cross memory with random values:
        // attention cost depends only on geometry, and the same cache is
        // read by both paths, so the comparison stays apples-to-apples.
        for (int t = 0; t < ctx; ++t) pool.ensure_token(*kv, t);
        for (int layer = 0; layer < config.num_layers; ++layer) {
          for (int t = 0; t < ctx; ++t) {
            rng.fill_normal(kv->self_k(layer, t), static_cast<size_t>(H),
                            0.0f, 1.0f);
            rng.fill_normal(kv->self_v(layer, t), static_cast<size_t>(H),
                            0.0f, 1.0f);
          }
          for (int s = 0; s < s_src; ++s) {
            rng.fill_normal(kv->cross_k(layer, s), static_cast<size_t>(H),
                            0.0f, 1.0f);
            rng.fill_normal(kv->cross_v(layer, s), static_cast<size_t>(H),
                            0.0f, 1.0f);
          }
        }
        pool.ensure_token(*kv, ctx);  // the timed step writes row `ctx`
        slots.push_back({7 + b, ctx, kv.get()});
        caches.push_back(std::move(kv));
      }

      std::vector<float> logits_rows(static_cast<size_t>(batch) * vocab);
      std::vector<float> logits_paged(static_cast<size_t>(batch) * vocab);
      model::DecodeWorkspace ws;

      // Bit-identity gate before timing.
      decoder.set_attention_path(AttnPath::kRows);
      decoder.step(slots, logits_rows.data(), ws);
      decoder.set_attention_path(AttnPath::kPaged);
      decoder.step(slots, logits_paged.data(), ws);
      TT_CHECK_MSG(std::memcmp(logits_rows.data(), logits_paged.data(),
                               logits_rows.size() * sizeof(float)) == 0,
                   "paged and row-pointer logits diverged at ctx " << ctx);

      // Interleaved repetitions, best-of: decorrelates the two paths from
      // machine drift and takes the noise floor of each.
      double rows_ms = 1e100, paged_ms = 1e100;
      for (int rep = 0; rep < 4; ++rep) {
        rows_ms = std::min(rows_ms,
                           time_steps(decoder, AttnPath::kRows, slots,
                                      logits_rows.data(), ws, measure_iters));
        paged_ms = std::min(paged_ms,
                            time_steps(decoder, AttnPath::kPaged, slots,
                                       logits_paged.data(), ws,
                                       measure_iters));
      }
      const double speedup = rows_ms / paged_ms;
      if (ctx >= 512) {
        worst_speedup_512 = std::min(worst_speedup_512, speedup);
        log_speedup_sum_512 += std::log(speedup);
        ++cells_512;
      }
      std::printf("%5d %6d | %12.3f %12.3f %8.2fx | %12.0f\n", ctx, batch,
                  rows_ms, paged_ms, speedup, batch / (paged_ms / 1000.0));
    }
  }
  bench::print_rule();
  // Acceptance gate: block-iterating decode is at least as fast as the
  // row-pointer path at long contexts. DRAM-saturated cells (largest
  // ctx x batch on a memory-bound host) land at parity by physics — both
  // paths stream identical bytes — so the per-cell bound allows timing
  // noise there while the geometric mean must show the win.
  const double geomean_512 = std::exp(log_speedup_sum_512 / cells_512);
  std::printf("ctx >= 512 paged/rows speedup: geomean %.2fx (acceptance "
              ">= 1.0x), worst cell %.2fx (>= 0.90x noise floor)\n\n",
              geomean_512, worst_speedup_512);
  // TURBO_BENCH_NO_GATE demotes the timing gate to report-only for hosts
  // with untrustworthy clocks (shared CI runners with CPU steal). The
  // bit-identity checks above are never soft.
  if (std::getenv("TURBO_BENCH_NO_GATE") == nullptr) {
    TT_CHECK_GE(geomean_512, 1.0);
    TT_CHECK_GE(worst_speedup_512, 0.90);
  }

  // -------------------------------------------------------------------
  // Part 2: whole-decode bit-identity (greedy + beam, dense + pooled).
  // -------------------------------------------------------------------
  std::printf("End-to-end equivalence — tokens and log-probs across "
              "{dense,pooled} x {rows,paged}\n");
  bench::print_rule('=');
  const auto small = model::ModelConfig::tiny(2, 64, 4, 128, 500);
  model::Seq2SeqDecoder small_decoder(small, 41);
  Rng mem_rng(0xA11CE);
  Tensor memory = Tensor::owned(Shape{17, small.hidden});
  mem_rng.fill_normal(memory.data<float>(),
                      static_cast<size_t>(memory.numel()), 0.0f, 1.0f);
  genserve::KvPoolOptions small_pool;
  small_pool.block_tokens = 4;
  small_pool.blocks_per_slab = 16;

  for (const int beam : {1, 3}) {
    small_decoder.set_attention_path(AttnPath::kRows);
    const auto reference = small_decoder.decode(memory, 24, 1, 2, beam);
    for (const bool pooled : {false, true}) {
      for (const bool paged : {false, true}) {
        small_decoder.set_attention_path(paged ? AttnPath::kPaged
                                               : AttnPath::kRows);
        genserve::KvCachePool pool(small, small_pool);
        genserve::PooledBeamKv factory(&pool);
        const auto got = small_decoder.decode(memory, 24, 1, 2, beam,
                                              pooled ? &factory : nullptr);
        TT_CHECK_MSG(got.tokens == reference.tokens &&
                         got.log_prob == reference.log_prob,
                     "decode diverged: beam " << beam << " pooled " << pooled
                                              << " paged " << paged);
        std::printf("beam %d %-6s %-5s: %2zu tokens, log-prob %+.6f  "
                    "(bit-identical)\n",
                    beam, pooled ? "pooled" : "dense",
                    paged ? "paged" : "rows", got.tokens.size(),
                    got.log_prob);
      }
    }
  }
  bench::print_rule();
  std::printf("all paths bit-identical; paged is the default decode path\n");
  return 0;
}
