// Figures 11 & 12: intermediate-tensor memory footprint (Fig. 11) and
// per-inference device alloc+free traffic (Fig. 12) across a trace of
// BERT inferences with random lengths U(5, 500), for the four allocators:
// PyTorch (cub-style caching), onnxruntime (BFC arena), Turbo (Algorithm 1)
// and GSOC (greedy-by-size offset calculation).
//
// As in the paper, one plan covers one encoder layer (repeated-structure
// trick); footprints scale identically across allocators so the
// comparison is exact.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "graph/builders.h"
#include "memory/dynamic_allocators.h"
#include "memory/gsoc_planner.h"
#include "memory/model_aware_allocator.h"

using namespace turbo;

int main() {
  const graph::Graph layer = graph::build_encoder_layer_fused({768, 12, 3072});
  Rng rng(0x11F12);
  std::vector<int> lens;
  for (int i = 0; i < 75; ++i) {
    lens.push_back(static_cast<int>(rng.uniform_int(5, 500)));
  }

  memory::ModelAwareAllocator turbo_alloc;
  memory::GsocPlanner gsoc;
  memory::ReplayAdapter pytorch(
      std::make_unique<memory::CubCachingAllocator>());
  memory::ReplayAdapter onnxrt(std::make_unique<memory::BfcArenaAllocator>());

  std::printf(
      "Figures 11 & 12 — intermediate-tensor footprint and alloc+free "
      "traffic (BERT, len U(5,500))\n");
  bench::print_rule('=');
  std::printf("%5s %6s | %36s | %36s\n", "", "", "footprint (MB), Fig. 11",
              "alloc+free per inference (MB), Fig. 12");
  std::printf("%5s %6s | %8s %8s %8s %8s | %8s %8s %8s %8s\n", "#", "len",
              "PyTorch", "onnxrt", "Turbo", "GSOC", "PyTorch", "onnxrt",
              "Turbo", "GSOC");

  const double mb = 1024.0 * 1024.0;
  double turbo_peak = 0, gsoc_peak = 0, pt_peak = 0, ort_peak = 0;
  double turbo_traffic = 0, gsoc_traffic = 0, pt_traffic = 0,
         ort_traffic = 0;
  for (size_t i = 0; i < lens.size(); ++i) {
    const auto usages = layer.tensor_usages(1, lens[i]);
    const auto pt = pytorch.begin_inference(usages);
    const auto po = onnxrt.begin_inference(usages);
    const auto tu = turbo_alloc.begin_inference(usages);
    const auto gs = gsoc.begin_inference(usages);
    std::printf("%5zu %6d | %8.2f %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f "
                "%8.2f\n",
                i, lens[i], pt.footprint_bytes / mb, po.footprint_bytes / mb,
                tu.footprint_bytes / mb, gs.footprint_bytes / mb,
                pt.traffic_bytes() / mb, po.traffic_bytes() / mb,
                tu.traffic_bytes() / mb, gs.traffic_bytes() / mb);
    pt_peak = std::max(pt_peak, pt.footprint_bytes / mb);
    ort_peak = std::max(ort_peak, po.footprint_bytes / mb);
    turbo_peak = std::max(turbo_peak, tu.footprint_bytes / mb);
    gsoc_peak = std::max(gsoc_peak, gs.footprint_bytes / mb);
    pt_traffic += pt.traffic_bytes() / mb;
    ort_traffic += po.traffic_bytes() / mb;
    turbo_traffic += tu.traffic_bytes() / mb;
    gsoc_traffic += gs.traffic_bytes() / mb;
  }
  bench::print_rule();
  std::printf("peak footprint (MB):  PyTorch %.2f  onnxrt %.2f  Turbo %.2f  "
              "GSOC %.2f\n",
              pt_peak, ort_peak, turbo_peak, gsoc_peak);
  std::printf("total traffic  (MB):  PyTorch %.2f  onnxrt %.2f  Turbo %.2f  "
              "GSOC %.2f\n",
              pt_traffic, ort_traffic, turbo_traffic, gsoc_traffic);
  std::printf(
      "\n(paper: caching allocators ratchet to a plateau after the longest "
      "request; Turbo tracks the working set like GSOC — max 12.15 MB — "
      "while moving less memory per inference than GSOC)\n");
  return 0;
}
