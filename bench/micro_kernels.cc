// google-benchmark microbenchmarks of the CPU numeric kernels and the
// simulated GPU kernels' planning paths (real wall time, not model time).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "graph/builders.h"
#include "kernels/elementwise.h"
#include "kernels/gemm.h"
#include "kernels/reduction.h"
#include "memory/gsoc_planner.h"
#include "memory/model_aware_allocator.h"
#include "serving/cost_table.h"
#include "serving/scheduler.h"

namespace {

using namespace turbo;

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(n) * n), b(a), c(a);
  rng.fill_uniform(a.data(), a.size(), -1, 1);
  rng.fill_uniform(b.data(), b.size(), -1, 1);
  for (auto _ : state) {
    kernels::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2L * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Arg(512);

void BM_SoftmaxRows(benchmark::State& state) {
  const long rows = state.range(0), cols = state.range(1);
  Rng rng(2);
  std::vector<float> data(static_cast<size_t>(rows * cols));
  rng.fill_uniform(data.data(), data.size(), -3, 3);
  for (auto _ : state) {
    kernels::softmax_rows(data.data(), rows, cols);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_SoftmaxRows)->Args({240, 128})->Args({2400, 500});

void BM_LayerNorm(benchmark::State& state) {
  const long rows = state.range(0), cols = 768;
  Rng rng(3);
  std::vector<float> data(static_cast<size_t>(rows * cols)), out(data);
  std::vector<float> gamma(static_cast<size_t>(cols), 1.0f), beta(gamma);
  rng.fill_uniform(data.data(), data.size(), -3, 3);
  for (auto _ : state) {
    kernels::layernorm(out.data(), data.data(), gamma.data(), beta.data(),
                       rows, cols);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_LayerNorm)->Arg(128)->Arg(2560);

void BM_AddBiasGelu(benchmark::State& state) {
  const long rows = state.range(0), cols = 3072;
  Rng rng(4);
  std::vector<float> data(static_cast<size_t>(rows * cols));
  std::vector<float> bias(static_cast<size_t>(cols));
  rng.fill_uniform(data.data(), data.size(), -3, 3);
  for (auto _ : state) {
    kernels::add_bias_gelu(data.data(), bias.data(), rows, cols);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_AddBiasGelu)->Arg(128)->Arg(1024);

// The planner itself — the overhead the paper's Fig. 13 measures.
void BM_ModelAwarePlanning(benchmark::State& state) {
  const int seq = static_cast<int>(state.range(0));
  const graph::Graph layer =
      graph::build_encoder_layer_fused({768, 12, 3072});
  const auto usages = layer.tensor_usages(1, seq);
  memory::ModelAwareAllocator alloc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.begin_inference(usages));
  }
}
BENCHMARK(BM_ModelAwarePlanning)->Arg(10)->Arg(200)->Arg(500);

void BM_GsocPlanning(benchmark::State& state) {
  const int seq = static_cast<int>(state.range(0));
  const graph::Graph layer =
      graph::build_encoder_layer_fused({768, 12, 3072});
  const auto usages = layer.tensor_usages(1, seq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(memory::gsoc_plan(usages));
  }
}
BENCHMARK(BM_GsocPlanning)->Arg(200);

// The DP batch scheduler on a full message queue (Algorithm 2 wall time).
void BM_DpScheduler(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto table = serving::CostTable::warmup(
      [](int len, int batch) { return 0.5 + 0.01 * len * batch; }, 512, 20,
      8);
  Rng rng(5);
  std::vector<serving::Request> requests;
  for (int i = 0; i < n; ++i) {
    serving::Request r;
    r.id = i;
    r.length = static_cast<int>(rng.uniform_int(2, 500));
    requests.push_back(r);
  }
  const serving::DpBatchScheduler scheduler(20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(requests, table));
  }
}
BENCHMARK(BM_DpScheduler)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
