// Chunked padding-free prefill fused into the decode loop: time-to-first-
// token and decode jitter on the causal-LM serving path.
//
// Workload: a mixed arrival trace — many short prompts and a few long
// ones — submitted over the step loop's lifetime (iteration-scheduled
// arrivals, so both runs see identical traffic). The trace replays twice
// through servers that differ only in the token quantum:
//
//  * unchunked (quantum 0): legacy stepping feeds one prompt row per
//    sequence per fused step, so a P-token prompt waits ~P iterations for
//    its first sampled token while decodes tick along beside it;
//  * chunked (step_token_quantum > 0): prepare_step packs decode rows
//    plus block-sized prefill chunks under a per-step token budget, and
//    the fused step writes chunk K/V rows directly into pool blocks with
//    zero padding — a long prompt prefills in a handful of steps without
//    unbounded step-time spikes for its decode-ready neighbours.
//
// Measured per request, wall clock: TTFT (submit -> first streamed token,
// via the token callback) and decode jitter (inter-token gap spread after
// the first token, reported as p50/p99 gap and the per-run max). The
// generated token streams must be bit-identical across the two runs —
// that gate is hard, never skipped. The p99 TTFT improvement gate is
// report-only under TURBO_BENCH_NO_GATE.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "serving/request.h"

using namespace turbo;

namespace {

constexpr int kVocab = 500;
constexpr int kBlockTokens = 8;
constexpr int kShort = 20;        // short prompts in the trace
constexpr int kLong = 5;          // long prompts in the trace
constexpr int kShortTokens = 12;
constexpr int kLongTokens = 192;
constexpr int kMaxNew = 16;
constexpr int kQuantum = 48;
constexpr int kArrivalStride = 6;  // steps between arrivals

model::ModelConfig gen_config() {
  return model::ModelConfig::tiny_causal(/*layers=*/2, /*hidden=*/64,
                                         /*heads=*/4, /*inter=*/128,
                                         /*vocab=*/kVocab);
}

double pct(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(
      std::min(v.size() - 1.0, std::ceil(q * static_cast<double>(v.size())) - 1));
  return v[idx];
}

struct RunResult {
  std::map<int64_t, std::vector<int>> tokens;  // bit-identity witness
  std::vector<double> ttft_ms;                 // per request
  std::vector<double> long_ttft_ms;            // long-prompt subset
  std::vector<double> gaps_ms;                 // decode inter-token gaps
  size_t steps = 0;
  size_t prefill_chunks = 0;
  double wall_s = 0.0;
};

RunResult run_trace(const model::ModelConfig& config,
                    const std::vector<serving::GenerationRequest>& trace,
                    int quantum) {
  genserve::GenServerOptions options;
  options.pool.block_tokens = kBlockTokens;
  options.pool.blocks_per_slab = 16;
  options.scheduler.max_active = 16;
  options.scheduler.optimistic_admission = true;
  options.scheduler.causal_lm = true;
  options.scheduler.step_token_quantum = quantum;
  genserve::GenerationServer server(config, options, 29);

  RunResult r;
  server.set_step_observer([&](const genserve::StepStats& s) {
    r.prefill_chunks += static_cast<size_t>(s.prefill_chunks);
  });

  using clock = std::chrono::steady_clock;
  std::map<int64_t, clock::time_point> submitted, last_token;
  const auto on_token = [&](int64_t id, int /*token*/, int /*step*/,
                            bool /*is_last*/) {
    const auto now = clock::now();
    auto it = last_token.find(id);
    if (it == last_token.end()) {
      const double ttft =
          std::chrono::duration<double, std::milli>(now - submitted.at(id))
              .count();
      r.ttft_ms.push_back(ttft);
      if (id >= 1000) r.long_ttft_ms.push_back(ttft);
      last_token.emplace(id, now);
    } else {
      r.gaps_ms.push_back(
          std::chrono::duration<double, std::milli>(now - it->second).count());
      it->second = now;
    }
  };

  const auto t0 = clock::now();
  size_t next = 0;
  while (next < trace.size() || !server.idle()) {
    while (next < trace.size() &&
           r.steps >= next * static_cast<size_t>(kArrivalStride)) {
      submitted.emplace(trace[next].id, clock::now());
      server.submit(trace[next], on_token);
      ++next;
    }
    server.step();
    ++r.steps;
  }
  r.wall_s = std::chrono::duration<double>(clock::now() - t0).count();
  for (auto& resp : server.take_completed()) {
    r.tokens[resp.request_id] = std::move(resp.tokens);
  }
  return r;
}

}  // namespace

int main() {
  const auto config = gen_config();

  // Mixed arrival trace: shorts carry the decode load, longs stress
  // prefill. Long prompts get ids >= 1000 so the TTFT split is trivial.
  Rng rng(0xC1F);
  std::vector<serving::GenerationRequest> trace;
  int s = 0, l = 0;
  while (s < kShort || l < kLong) {
    // One long prompt after every fourth short one.
    const bool want_long = l < kLong && (s >= kShort || (s > 0 && s % 4 == 0 &&
                                                         l * 4 < s));
    serving::GenerationRequest r;
    if (want_long) {
      r.id = 1000 + l++;
      r.src_tokens = rng.token_ids(kLongTokens, kVocab);
    } else {
      r.id = s++;
      r.src_tokens = rng.token_ids(kShortTokens, kVocab);
    }
    r.max_new_tokens = kMaxNew;
    r.bos_id = 1;
    r.eos_id = 2;
    trace.push_back(std::move(r));
  }

  std::printf("Chunked padding-free prefill — causal LM mixed trace: %d short"
              " (%d tok) + %d long\n(%d tok) prompts, max_new %d, arrival "
              "every %d steps, quantum %d\n",
              kShort, kShortTokens, kLong, kLongTokens, kMaxNew,
              kArrivalStride, kQuantum);
  bench::print_rule('=');

  const RunResult off = run_trace(config, trace, /*quantum=*/0);
  const RunResult on = run_trace(config, trace, kQuantum);

  const auto row = [](const char* name, const RunResult& r) {
    std::printf("%-9s | %7zu steps %6.3fs | TTFT p50 %8.2f p99 %8.2f | long "
                "p99 %8.2f\n",
                name, r.steps, r.wall_s, pct(r.ttft_ms, 0.50),
                pct(r.ttft_ms, 0.99), pct(r.long_ttft_ms, 0.99));
  };
  row("unchunked", off);
  row("chunked", on);
  bench::print_rule();
  std::printf("decode jitter (inter-token gap): unchunked p50 %.3f p99 %.3f "
              "max %.3f ms\n",
              pct(off.gaps_ms, 0.50), pct(off.gaps_ms, 0.99),
              off.gaps_ms.empty()
                  ? 0.0
                  : *std::max_element(off.gaps_ms.begin(), off.gaps_ms.end()));
  std::printf("                                   chunked p50 %.3f p99 %.3f "
              "max %.3f ms\n",
              pct(on.gaps_ms, 0.50), pct(on.gaps_ms, 0.99),
              on.gaps_ms.empty()
                  ? 0.0
                  : *std::max_element(on.gaps_ms.begin(), on.gaps_ms.end()));
  std::printf("chunked run: %zu multi-row chunk launches across %zu steps\n",
              on.prefill_chunks, on.steps);

  // Hard gate: chunking reorders work, it must not change a single token.
  if (off.tokens != on.tokens) {
    std::printf("!! token streams diverged between chunked and unchunked — "
                "chunked prefill must be bit-exact\n");
    return 1;
  }
  std::printf("outputs bit-identical across the A/B (%zu requests)\n",
              off.tokens.size());

  // p99 TTFT gate (report-only under TURBO_BENCH_NO_GATE): packing prompt
  // rows chunk-wise must beat one-row-per-step prefill on first tokens.
  const double p99_off = pct(off.ttft_ms, 0.99);
  const double p99_on = pct(on.ttft_ms, 0.99);
  if (std::getenv("TURBO_BENCH_NO_GATE") == nullptr) {
    if (!(p99_on < p99_off)) {
      std::printf("!! p99 TTFT gate failed: chunked %.2f ms vs unchunked "
                  "%.2f ms (need improvement)\n",
                  p99_on, p99_off);
      return 1;
    }
    std::printf("gate passed: p99 TTFT %.2f ms -> %.2f ms (%.2fx)\n", p99_off,
                p99_on, p99_on > 0 ? p99_off / p99_on : 0.0);
  } else {
    std::printf("(gate skipped: TURBO_BENCH_NO_GATE set; p99 TTFT %.2f ms -> "
                "%.2f ms)\n",
                p99_off, p99_on);
  }
  return 0;
}
