// Ablation: the XElem row-batching width X of warpAllReduceSum_XElem
// (paper fixes X = 2) and the single-pass-variance trick (Equation 1).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "gpukernels/reduction_sim.h"

using namespace turbo;
using gpukernels::ReductionImpl;

int main() {
  const auto spec = gpusim::DeviceSpec::v100();
  const std::vector<std::pair<long, long>> shapes = {
      {12 * 10, 10}, {12 * 128, 128}, {20L * 12 * 128, 128},
      {20L * 12 * 500, 500}};

  std::printf("Ablation — XElem width X for Softmax (us)\n");
  bench::print_rule('=');
  std::printf("%-20s %10s %10s %10s %10s %10s\n", "(rows, cols)", "X=1",
              "X=2", "X=4", "X=8", "baseline");
  for (const auto& [rows, cols] : shapes) {
    std::printf("(%7ld, %4ld)    ", rows, cols);
    for (int x : {1, 2, 4, 8}) {
      std::printf(" %9.2f",
                  gpukernels::softmax_sim(nullptr, rows, cols, 1.0f,
                                          ReductionImpl::kTurbo, spec, x)
                      .time_us);
    }
    std::printf(" %9.2f\n",
                gpukernels::softmax_sim(nullptr, rows, cols, 1.0f,
                                        ReductionImpl::kBaseline, spec)
                    .time_us);
  }

  std::printf("\nAblation — LayerNorm variance computation (us, cols=768)\n");
  bench::print_rule('=');
  std::printf("%-12s %22s %22s %12s\n", "rows", "single-pass (Eq. 1)",
              "two-pass (classical)", "saving");
  for (long rows : {10L, 128L, 2560L, 10240L}) {
    const double single =
        gpukernels::layernorm_sim(nullptr, nullptr, nullptr, nullptr, rows,
                                  768, ReductionImpl::kTurbo, spec, 2, true)
            .time_us;
    const double two =
        gpukernels::layernorm_sim(nullptr, nullptr, nullptr, nullptr, rows,
                                  768, ReductionImpl::kTurbo, spec, 2, false)
            .time_us;
    std::printf("%-12ld %22.2f %22.2f %11.1f%%\n", rows, single, two,
                100.0 * (two - single) / two);
  }
  return 0;
}
