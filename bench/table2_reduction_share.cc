// Table 2: share of Softmax / LayerNorm time inside the attention layer,
// before (framework kernels) and after (Turbo kernels) optimization.
//
// "Attention layer" = ops Gemm012Fused .. AddBiasLayerNorm of the fused
// encoder graph. "Before" costs the two reduction kernels with the
// framework (PyTorch) implementation while the rest of the attention block
// runs on the Turbo runtime — exactly the paper's measurement protocol
// ("attention time is measured using our runtime after replacing Softmax
// and LayerNorm with PyTorch's implementations").
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "graph/builders.h"
#include "perfmodel/kernel_cost.h"
#include "perfmodel/runtime_profile.h"

using namespace turbo;

namespace {

struct AttentionCost {
  double softmax_us = 0;
  double layernorm_us = 0;
  double other_us = 0;
  double total() const { return softmax_us + layernorm_us + other_us; }
};

AttentionCost attention_cost(int batch, int seq, bool optimized,
                             const gpusim::DeviceSpec& spec) {
  const auto turbo = perfmodel::RuntimeProfile::turbo();
  const auto pytorch = perfmodel::RuntimeProfile::pytorch();
  const graph::Graph g = graph::build_encoder_layer_fused({768, 12, 3072});
  AttentionCost out;
  for (const auto& op : g.ops()) {
    if (op.name == "BertIntermediate/gemm") break;  // end of attention part
    const auto cost = op.cost_fn(batch, seq);
    if (op.kind == graph::OpKind::kSoftmax) {
      out.softmax_us += perfmodel::kernel_time_us(
          op.kind, cost, optimized ? turbo : pytorch, spec);
    } else if (op.kind == graph::OpKind::kAddBiasLayerNorm) {
      out.layernorm_us += perfmodel::kernel_time_us(
          op.kind, cost, optimized ? turbo : pytorch, spec);
    } else {
      out.other_us += perfmodel::kernel_time_us(op.kind, cost, turbo, spec);
    }
  }
  return out;
}

}  // namespace

int main() {
  const auto spec = gpusim::DeviceSpec::v100();
  const std::vector<std::pair<int, int>> shapes = {
      {1, 10}, {1, 100}, {1, 500}, {20, 10}, {20, 100}, {20, 500}};

  std::printf(
      "Table 2 — share of batch-reduction ops in the attention layer\n");
  bench::print_rule('=');
  std::printf("%-14s %18s %18s %18s %18s\n", "(bs, seq)", "Softmax/before",
              "Softmax/after", "LayerNorm/before", "LayerNorm/after");
  for (const auto& [bs, seq] : shapes) {
    const AttentionCost before = attention_cost(bs, seq, false, spec);
    const AttentionCost after = attention_cost(bs, seq, true, spec);
    std::printf("(%2d, %4d)     %17.2f%% %17.2f%% %17.2f%% %17.2f%%\n", bs,
                seq, 100.0 * before.softmax_us / before.total(),
                100.0 * after.softmax_us / after.total(),
                100.0 * before.layernorm_us / before.total(),
                100.0 * after.layernorm_us / after.total());
  }
  return 0;
}
