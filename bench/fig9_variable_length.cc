// Figure 9: end-to-end latency on variable-length requests (RTX 2060).
// BERT / ALBERT / DistilBERT with lengths U(5, 500) and the Seq2Seq decoder
// with source lengths U(28, 137); runtimes: Turbo, PyTorch, onnxruntime,
// Turbo-TC. Requests are generated with a fixed seed and reported sorted by
// length (as the paper plots them).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/stats.h"

using namespace turbo;
using perfmodel::RuntimeProfile;

namespace {

void encoder_section(const char* name,
                     const perfmodel::EncoderModelDesc& model,
                     const gpusim::DeviceSpec& spec, bool with_onnx) {
  Rng rng(0xF19);
  std::vector<int> lens;
  for (int i = 0; i < 24; ++i) {
    lens.push_back(static_cast<int>(rng.uniform_int(5, 500)));
  }
  std::sort(lens.begin(), lens.end());

  std::printf("\nLatency of %s on variable-length requests (ms)\n", name);
  std::printf("%6s %10s %10s %10s %10s\n", "len", "Turbo", "PyTorch",
              with_onnx ? "onnxrt" : "-", "Turbo-TC");
  std::vector<double> speedup_pt, speedup_ort;
  for (int len : lens) {
    const double turbo = perfmodel::encoder_latency_ms(
        model, 1, len, RuntimeProfile::turbo(), spec);
    const double pytorch = perfmodel::encoder_latency_ms(
        model, 1, len, RuntimeProfile::pytorch(), spec);
    const double onnx =
        with_onnx ? perfmodel::encoder_latency_ms(
                        model, 1, len, RuntimeProfile::onnxruntime(), spec)
                  : 0.0;
    const double tc = perfmodel::encoder_latency_ms(
        model, 1, len, RuntimeProfile::turbo_tc(), spec);
    speedup_pt.push_back(pytorch / turbo);
    if (with_onnx) speedup_ort.push_back(onnx / turbo);
    if (with_onnx) {
      std::printf("%6d %10.2f %10.2f %10.2f %10.2f\n", len, turbo, pytorch,
                  onnx, tc);
    } else {
      std::printf("%6d %10.2f %10.2f %10s %10.2f\n", len, turbo, pytorch,
                  "-", tc);
    }
  }
  std::printf("Turbo speedup vs PyTorch: %.2fx-%.2fx, avg %.2fx\n",
              *std::min_element(speedup_pt.begin(), speedup_pt.end()),
              *std::max_element(speedup_pt.begin(), speedup_pt.end()),
              mean(speedup_pt));
  if (with_onnx) {
    std::printf("Turbo speedup vs onnxruntime: %.2fx-%.2fx, avg %.2fx\n",
                *std::min_element(speedup_ort.begin(), speedup_ort.end()),
                *std::max_element(speedup_ort.begin(), speedup_ort.end()),
                mean(speedup_ort));
  }
}

}  // namespace

int main() {
  const auto spec = gpusim::DeviceSpec::rtx2060();
  std::printf("Figure 9 — variable-length request latency (%s)\n",
              spec.name.c_str());
  bench::print_rule('=');

  encoder_section("Bert", bench::bert_base(), spec, /*with_onnx=*/true);
  encoder_section("Albert", bench::albert(), spec, /*with_onnx=*/false);
  encoder_section("DistilBert", bench::distilbert(), spec, true);

  // Seq2Seq decoder: source lengths 28-137 (zh->en translation).
  std::printf("\nLatency of Decoder on variable-length requests (ms)\n");
  std::printf("%6s %10s %10s %10s\n", "src", "Turbo", "PyTorch", "Turbo-TC");
  Rng rng(0xF19D);
  std::vector<int> lens;
  for (int i = 0; i < 12; ++i) {
    lens.push_back(static_cast<int>(rng.uniform_int(28, 137)));
  }
  std::sort(lens.begin(), lens.end());
  perfmodel::DecoderModelDesc dec;
  std::vector<double> speedup;
  for (int len : lens) {
    const double turbo =
        perfmodel::decoder_latency_us(dec, len, RuntimeProfile::turbo(),
                                      spec) /
        1000.0;
    const double pytorch =
        perfmodel::decoder_latency_us(dec, len, RuntimeProfile::pytorch(),
                                      spec) /
        1000.0;
    const double tc =
        perfmodel::decoder_latency_us(dec, len, RuntimeProfile::turbo_tc(),
                                      spec) /
        1000.0;
    speedup.push_back(pytorch / turbo);
    std::printf("%6d %10.1f %10.1f %10.1f\n", len, turbo, pytorch, tc);
  }
  std::printf("Decoder speedup vs PyTorch: %.2fx-%.2fx, avg %.2fx\n",
              *std::min_element(speedup.begin(), speedup.end()),
              *std::max_element(speedup.begin(), speedup.end()),
              mean(speedup));
  return 0;
}
