// Generation serving: iteration-level batching + KvCachePool footprint.
//
// Part 1 traces one GenerationServer over a burst of variable-length
// generation requests: the active step batch re-forms every iteration
// (sequences admit when pool capacity allows and retire at EOS/budget),
// and the KV pool's device footprint is sampled per iteration against the
// live working set — the decoder-side analogue of the paper's Fig. 11
// footprint plot. A static whole-batch allocator (reserve every request's
// worst case up front, hold until the burst drains) is shown as the
// baseline the pool avoids.
//
// Part 2 drives the AsyncGenerationServer: concurrent client threads
// submit requests with per-token streaming callbacks; futures resolve as
// sequences retire mid-batch.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "serving/request.h"

using namespace turbo;

namespace {

model::ModelConfig gen_config() {
  return model::ModelConfig::tiny(/*layers=*/2, /*hidden=*/64, /*heads=*/4,
                                  /*inter=*/128, /*vocab=*/500);
}

serving::GenerationRequest make_request(Rng& rng, int64_t id) {
  serving::GenerationRequest r;
  r.id = id;
  const int src_len = static_cast<int>(rng.uniform_int(4, 48));
  r.src_tokens = rng.token_ids(src_len, 500);
  r.max_new_tokens = static_cast<int>(rng.uniform_int(4, 40));
  return r;
}

}  // namespace

int main() {
  const auto config = gen_config();
  const double kb = 1024.0;

  // -------------------------------------------------------------------
  // Part 1: footprint trace (sync engine, per-iteration observer).
  // -------------------------------------------------------------------
  genserve::GenServerOptions options;
  options.pool.block_tokens = 8;
  options.pool.blocks_per_slab = 16;
  options.scheduler.max_active = 8;

  genserve::GenerationServer server(config, options, 29);
  Rng rng(0x6E5);
  const int num_requests = 24;
  size_t static_reservation = 0;
  {
    genserve::KvCachePool probe(config, options.pool);
    for (int i = 0; i < num_requests; ++i) {
      const auto r = make_request(rng, i);
      static_reservation +=
          probe.blocks_for(static_cast<int>(r.src_tokens.size()),
                           r.max_new_tokens) *
          probe.block_bytes();
    }
  }
  rng = Rng(0x6E5);  // replay the same trace through the server
  for (int i = 0; i < num_requests; ++i) server.submit(make_request(rng, i));

  std::printf("Generation serving — iteration-level batching, %d requests, "
              "src U(4,48), max_new U(4,40), max_active %d\n",
              num_requests, options.scheduler.max_active);
  bench::print_rule('=');
  std::printf("%5s %7s %6s %7s | %14s %14s\n", "iter", "active", "admit",
              "retire", "KV in use (KB)", "KV slabs (KB)");

  size_t peak_in_use = 0, peak_device = 0;
  server.set_step_observer([&](const genserve::StepStats& s) {
    peak_in_use = std::max(peak_in_use, s.kv_bytes_in_use);
    peak_device = std::max(peak_device, s.kv_device_bytes);
    if (s.iteration % 5 == 1 || s.retired > 0) {
      std::printf("%5lld %7d %6d %7d | %14.1f %14.1f\n",
                  static_cast<long long>(s.iteration), s.active, s.admitted,
                  s.retired, s.kv_bytes_in_use / kb, s.kv_device_bytes / kb);
    }
  });
  const auto responses = server.run_to_completion();
  bench::print_rule();

  size_t total_tokens = 0;
  for (const auto& r : responses) total_tokens += r.tokens.size();
  std::printf("served %zu requests, %zu tokens in %lld iterations\n",
              responses.size(), total_tokens,
              static_cast<long long>(server.iterations()));
  std::printf("KV peak: working set %.1f KB, slab footprint %.1f KB "
              "(slack %.2fx)\n",
              peak_in_use / kb, peak_device / kb,
              peak_in_use ? static_cast<double>(peak_device) / peak_in_use
                          : 0.0);
  std::printf("static whole-burst reservation (no iteration-level "
              "retire): %.1f KB — pool peak is %.2fx smaller\n",
              static_reservation / kb,
              peak_device ? static_cast<double>(static_reservation) /
                                peak_device
                          : 0.0);
  std::printf("end of burst: slab footprint %.1f KB (all released)\n",
              server.pool().stats().current_device_bytes / kb);

  // -------------------------------------------------------------------
  // Part 2: async serving with per-token streaming.
  // -------------------------------------------------------------------
  std::printf("\nAsync generation serving — concurrent clients, per-token "
              "streaming\n");
  bench::print_rule('=');

  auto engine = std::make_unique<genserve::GenerationServer>(
      config, options, 29);
  genserve::AsyncGenerationServer async_server(std::move(engine));

  const int num_clients = 4;
  const int per_client = 4;  // 16 in flight, 8 decoding concurrently
  std::atomic<size_t> streamed_tokens{0};
  std::atomic<int> streams_closed{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  std::mutex result_mutex;
  std::vector<serving::GenerationResponse> async_responses;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng client_rng(0xC0FFEE + static_cast<uint64_t>(c));
      std::vector<std::future<serving::GenerationResponse>> futures;
      for (int i = 0; i < per_client; ++i) {
        auto request = make_request(client_rng, c * 100 + i);
        futures.push_back(async_server.submit(
            std::move(request),
            [&](int64_t, int, int, bool last) {
              streamed_tokens.fetch_add(1, std::memory_order_relaxed);
              if (last) streams_closed.fetch_add(1, std::memory_order_relaxed);
            }));
      }
      for (auto& f : futures) {
        auto resp = f.get();
        std::lock_guard<std::mutex> lock(result_mutex);
        async_responses.push_back(std::move(resp));
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  async_server.shutdown();

  double mean_latency_ms = 0.0;
  size_t async_tokens = 0;
  for (const auto& r : async_responses) {
    mean_latency_ms += r.latency_ms;
    async_tokens += r.tokens.size();
  }
  mean_latency_ms /= static_cast<double>(async_responses.size());
  const auto snapshot = async_server.pool_snapshot();

  std::printf("%d clients x %d requests: served %zu, %lld iterations, "
              "streamed %zu token events (%d streams closed)\n",
              num_clients, per_client, async_server.served(),
              static_cast<long long>(async_server.iterations()),
              streamed_tokens.load(), streams_closed.load());
  std::printf("generated %zu tokens in %.3f s (%.0f tok/s), mean latency "
              "%.2f ms\n",
              async_tokens, wall_s, async_tokens / wall_s, mean_latency_ms);
  std::printf("KV pool after drain: %d active seqs, %.1f KB resident, "
              "peak %.1f KB\n",
              snapshot.active_sequences, snapshot.device_bytes / kb,
              snapshot.peak_device_bytes / kb);
  return 0;
}
