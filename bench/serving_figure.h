// Shared driver for the serving-throughput figures (Figs. 15 & 16 and
// Tables 4 & 5): sweeps Poisson request rates over four serving systems and
// prints the throughput curve plus the latency table at each system's
// critical point.
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "serving/simulator.h"
#include "serving/workload.h"

namespace turbo::bench {

struct ServingSystem {
  std::string name;
  const serving::CostTable* costs;
  std::unique_ptr<serving::BatchScheduler> scheduler;
};

inline void run_serving_figure(const char* title, int min_len, int max_len,
                               std::vector<ServingSystem>& systems) {
  const std::vector<double> rates = {40,  60,  80,  100, 120,  140,
                                     250, 500, 750, 1000, 1250, 1500};

  std::printf("%s\n", title);
  print_rule('=');
  std::printf("%10s", "req/s");
  for (const auto& s : systems) std::printf(" %22s", s.name.c_str());
  std::printf("\n");

  serving::SimOptions options;
  options.max_batch = 20;

  // Throughput curves + saturation (critical-point) detection.
  std::vector<double> critical(systems.size(), 0.0);
  std::vector<std::vector<serving::SimResult>> results(systems.size());
  for (double rate : rates) {
    serving::WorkloadSpec wspec;
    wspec.rate_per_s = rate;
    wspec.horizon_s = 6.0;
    wspec.min_len = min_len;
    wspec.max_len = max_len;
    wspec.seed = 0x5e7;
    const auto arrivals = serving::generate_poisson_workload(wspec);
    std::printf("%10.0f", rate);
    for (size_t i = 0; i < systems.size(); ++i) {
      const auto r = serving::simulate_serving(arrivals,
                                               *systems[i].scheduler,
                                               *systems[i].costs, options);
      results[i].push_back(r);
      if (!r.saturated) critical[i] = std::max(critical[i], r.response_rate);
      std::printf(" %15.0f resp/s%s", r.response_rate,
                  r.saturated ? "*" : " ");
    }
    std::printf("\n");
  }
  std::printf("(* = saturated: queue grows without bound, latency -> inf)\n");
  print_rule();
  std::printf("critical points (max sustained throughput):\n");
  for (size_t i = 0; i < systems.size(); ++i) {
    std::printf("  %-24s %7.0f resp/s (%.2fx vs %s)\n",
                systems[i].name.c_str(), critical[i],
                critical[0] > 0 ? critical[i] / critical[0] : 0.0,
                systems[0].name.c_str());
  }

  // Latency table at each system's critical point (Tables 4 / 5).
  print_rule();
  std::printf("latency at critical points, avg (min, max) ms:\n");
  std::printf("%10s", "req/s");
  for (const auto& s : systems) std::printf(" %26s", s.name.c_str());
  std::printf("\n");
  for (size_t ci = 0; ci < systems.size(); ++ci) {
    const double rate = critical[ci];
    if (rate <= 0) continue;
    serving::WorkloadSpec wspec;
    wspec.rate_per_s = rate;
    wspec.horizon_s = 6.0;
    wspec.min_len = min_len;
    wspec.max_len = max_len;
    wspec.seed = 0x5e7;
    const auto arrivals = serving::generate_poisson_workload(wspec);
    std::printf("%10.0f", rate);
    for (size_t i = 0; i < systems.size(); ++i) {
      const auto r = serving::simulate_serving(arrivals,
                                               *systems[i].scheduler,
                                               *systems[i].costs, options);
      if (r.saturated) {
        std::printf(" %26s", "+inf");
      } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.2f (%.2f, %.2f)",
                      r.latency_ms.mean, r.latency_ms.min, r.latency_ms.max);
        std::printf(" %26s", buf);
      }
    }
    std::printf("\n");
  }
}

}  // namespace turbo::bench
