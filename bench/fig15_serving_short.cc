// Figure 15 + Table 4: serving throughput and latency, request lengths
// U(2, 100), Poisson arrivals 40-1500 req/s. Four systems:
// PyTorch-NoBatch, Turbo-NoBatch, Turbo-Naive-Batch, Turbo-DP-Batch.
// Hungry trigger, max batch 20, response cache off (paper §6.3).
#include "bench/serving_figure.h"
#include "serving/scheduler.h"

using namespace turbo;

int main() {
  const auto spec = gpusim::DeviceSpec::rtx2060();
  const auto model = bench::bert_base();
  const auto pytorch_table = bench::serving_cost_table(
      model, perfmodel::RuntimeProfile::pytorch(), spec,
      bench::kPyTorchServingOverheadMs, 100, 20);
  const auto turbo_table = bench::serving_cost_table(
      model, perfmodel::RuntimeProfile::turbo(), spec,
      bench::kTurboServingOverheadMs, 100, 20);

  std::vector<bench::ServingSystem> systems;
  systems.push_back({"PyTorch-NoBatch", &pytorch_table,
                     std::make_unique<serving::NoBatchScheduler>()});
  systems.push_back({"Turbo-NoBatch", &turbo_table,
                     std::make_unique<serving::NoBatchScheduler>()});
  systems.push_back({"Turbo-Naive-Batch", &turbo_table,
                     std::make_unique<serving::NaiveBatchScheduler>(20)});
  systems.push_back({"Turbo-DP-Batch", &turbo_table,
                     std::make_unique<serving::DpBatchScheduler>(20)});

  bench::run_serving_figure(
      "Figure 15 + Table 4 — serving variable-length requests (len 2-100)",
      2, 100, systems);
  std::printf(
      "\n(paper critical points: PyTorch-NoBatch 99, Turbo-NoBatch 237 "
      "(2.39x), Turbo-Naive-Batch 323 (3.26x), Turbo-DP-Batch 402 (4.06x) "
      "resp/s)\n");
  return 0;
}
