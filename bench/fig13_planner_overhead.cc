// Figure 13: cost of offset scheduling (allocator Algorithm 1) relative to
// total inference latency, over BERT requests with lengths U(5, 500).
// Planning cost is the *measured* wall time of the real planner; inference
// latency comes from the performance model. One plan serves all 12 layers
// (the paper's repeated-structure trick).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "graph/builders.h"
#include "memory/model_aware_allocator.h"

using namespace turbo;

int main() {
  const auto spec = gpusim::DeviceSpec::rtx2060();
  const auto model = bench::bert_base();
  const graph::Graph layer = graph::build_encoder_layer_fused({768, 12, 3072});
  memory::ModelAwareAllocator alloc;
  Rng rng(0xF13);

  std::printf(
      "Figure 13 — offset-scheduling overhead of the model-aware allocator\n");
  bench::print_rule('=');
  std::printf("%6s %14s %14s %10s\n", "len", "plan_us", "infer_us", "pct");

  std::vector<int> lens;
  for (int i = 0; i < 40; ++i) {
    lens.push_back(static_cast<int>(rng.uniform_int(5, 500)));
  }
  std::sort(lens.begin(), lens.end());

  std::vector<double> pcts;
  for (int len : lens) {
    // Median of several planning runs: wall-clock timing of a ~100 us
    // operation is noisy.
    std::vector<double> plan_us;
    for (int rep = 0; rep < 5; ++rep) {
      plan_us.push_back(
          alloc.begin_inference(layer.tensor_usages(1, len)).planning_us);
    }
    const double plan = percentile(plan_us, 50);
    const double infer =
        perfmodel::encoder_latency(model, 1, len,
                                   perfmodel::RuntimeProfile::turbo(), spec)
            .total_us;
    const double pct = 100.0 * plan / infer;
    pcts.push_back(pct);
    std::printf("%6d %14.2f %14.1f %9.3f%%\n", len, plan, infer, pct);
  }
  bench::print_rule();
  std::printf("overhead: avg %.2f%%, min %.3f%%, max %.2f%%\n", mean(pcts),
              *std::min_element(pcts.begin(), pcts.end()),
              *std::max_element(pcts.begin(), pcts.end()));
  std::printf("(paper: 1.8%% on average, 0.07%%-5.77%%)\n");
  return 0;
}
