// Turbo-TC precision: quantifies the paper's claim that tensor-core GEMMs
// introduce "minimal and acceptable precision loss" versus FP32 (§6.2.1).
// Runs identical-weight BERT-style models through the fp32 and the
// fp16-operand (fp32-accumulate) GEMM paths and reports output divergence.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "model/encoder.h"

using namespace turbo;

int main() {
  std::printf("Turbo-TC numeric precision vs FP32 (identical weights)\n");
  bench::print_rule('=');
  std::printf("%-28s %6s %14s %14s %14s\n", "model", "seq", "max |err|",
              "rms err", "output rms");

  for (const auto& [name, layers, hidden, heads, inter] :
       {std::tuple<const char*, int, int, int, int>{"tiny (2L, 64)", 2, 64,
                                                    4, 128},
        {"small (4L, 128)", 4, 128, 4, 512},
        {"medium (6L, 256)", 6, 256, 8, 1024}}) {
    for (int seq : {16, 64}) {
      model::ModelConfig fp32_cfg =
          model::ModelConfig::tiny(layers, hidden, heads, inter, 1000);
      model::ModelConfig tc_cfg = fp32_cfg;
      tc_cfg.tensor_core_gemm = true;
      model::EncoderModel fp32_model(fp32_cfg, 123);
      model::EncoderModel tc_model(tc_cfg, 123);

      Rng rng(static_cast<uint64_t>(seq) * 31 + layers);
      Tensor ids = Tensor::owned(Shape{1, seq}, DType::kI32);
      auto toks = rng.token_ids(seq, 1000);
      std::copy(toks.begin(), toks.end(), ids.data<int32_t>());

      Tensor ref = fp32_model.forward(ids);
      Tensor tc = tc_model.forward(ids);
      double max_err = 0, sq_err = 0, sq_out = 0;
      for (int64_t i = 0; i < ref.numel(); ++i) {
        const double e = static_cast<double>(ref.data<float>()[i]) -
                         tc.data<float>()[i];
        max_err = std::max(max_err, std::abs(e));
        sq_err += e * e;
        sq_out += static_cast<double>(ref.data<float>()[i]) *
                  ref.data<float>()[i];
      }
      const double n = static_cast<double>(ref.numel());
      std::printf("%-28s %6d %14.5f %14.6f %14.4f\n", name, seq, max_err,
                  std::sqrt(sq_err / n), std::sqrt(sq_out / n));
    }
  }
  std::printf(
      "\n(layernorm between layers re-normalizes activations, so fp16 "
      "rounding error stays bounded instead of compounding — the paper's "
      "\"minimal and acceptable precision loss\")\n");
  return 0;
}
