// Ablation: DP vs naive batching as a function of length dispersion, and
// the hungry vs lazy trigger policies (paper §5).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/serving_figure.h"
#include "serving/scheduler.h"

using namespace turbo;

int main() {
  const auto spec = gpusim::DeviceSpec::rtx2060();
  const auto model = bench::bert_base();
  const auto table = bench::serving_cost_table(
      model, perfmodel::RuntimeProfile::turbo(), spec,
      bench::kTurboServingOverheadMs, 512, 20);

  serving::SimOptions hungry;
  serving::SimOptions lazy;
  lazy.trigger = serving::TriggerPolicy::kLazy;
  lazy.lazy_timeout_ms = 3.0;
  lazy.latency_slo_ms = 100.0;

  std::printf("Ablation — scheduler vs length dispersion (rate 150 req/s)\n");
  bench::print_rule('=');
  std::printf("%-18s %16s %16s %16s %16s\n", "length range", "naive resp/s",
              "dp resp/s", "naive pad-ovh", "dp pad-ovh");
  for (const auto& [lo, hi] : std::vector<std::pair<int, int>>{
           {90, 110}, {50, 200}, {5, 500}}) {
    serving::WorkloadSpec wspec;
    wspec.rate_per_s = 150;
    wspec.horizon_s = 6;
    wspec.min_len = lo;
    wspec.max_len = hi;
    const auto arrivals = serving::generate_poisson_workload(wspec);
    const auto naive = serving::simulate_serving(
        arrivals, serving::NaiveBatchScheduler(20), table, hungry);
    const auto dp = serving::simulate_serving(
        arrivals, serving::DpBatchScheduler(20), table, hungry);
    std::printf("U(%3d, %3d)        %15.0f%s %15.0f%s %15.1f%% %15.1f%%\n",
                lo, hi, naive.response_rate, naive.saturated ? "*" : " ",
                dp.response_rate, dp.saturated ? "*" : " ",
                100 * naive.padding_overhead_frac,
                100 * dp.padding_overhead_frac);
  }
  std::printf("(DP's edge grows with dispersion: when lengths are similar, "
              "naive batching is already near-optimal)\n");

  std::printf("\nAblation — hungry vs lazy trigger (len 2-100, DP batching)\n");
  bench::print_rule('=');
  std::printf("%-10s %18s %18s %18s %18s\n", "req/s", "hungry resp/s",
              "lazy resp/s", "hungry avg ms", "lazy avg ms");
  for (double rate : {60.0, 120.0, 250.0}) {
    serving::WorkloadSpec wspec;
    wspec.rate_per_s = rate;
    wspec.horizon_s = 6;
    wspec.min_len = 2;
    wspec.max_len = 100;
    const auto arrivals = serving::generate_poisson_workload(wspec);
    const auto h = serving::simulate_serving(
        arrivals, serving::DpBatchScheduler(20), table, hungry);
    const auto l = serving::simulate_serving(
        arrivals, serving::DpBatchScheduler(20), table, lazy);
    std::printf("%-10.0f %17.0f%s %17.0f%s %18.2f %18.2f\n", rate,
                h.response_rate, h.saturated ? "*" : " ", l.response_rate,
                l.saturated ? "*" : " ", h.latency_ms.mean,
                l.latency_ms.mean);
  }
  std::printf("(lazy waits to form bigger batches: better amortization at "
              "low rates, extra queueing delay)\n");
  return 0;
}
