// Radix-tree prefix caching on the causal-LM serving path: admitted
// concurrency at a fixed pool size.
//
// Workload: a multi-turn chat trace. Every conversation opens with the
// same long block-aligned system prompt, then diverges (per-conversation
// user suffix); each later turn's prompt is the full fed history of the
// previous turn plus fresh user tokens — the canonical radix-cache
// pattern (vLLM/SGLang-style prefix reuse, transplanted onto this repo's
// decoder-only path where prefill runs through the fused step loop and
// every self row is a pure function of the fed tokens before it).
//
// The burst replays twice through servers that differ only in
// KvPoolOptions::enable_radix_tree, on a pool capped at the same
// max_bytes, under optimistic admission. With the tree on, an admitted
// sequence adopts the cached block-aligned prefix of its prompt (pinned +
// refcounted, charged once across all adopters) and starts decoding at
// prefix_rows(); retiring sequences donate their blocks back as an
// LRU-evictable cache tier whose bytes do not count against admission.
// With it off, every sequence prefills every prompt row into private
// blocks, so the fixed pool sustains far fewer concurrent sequences.
//
// Gate (report-only under TURBO_BENCH_NO_GATE): on the cache-warm turns,
// mean concurrent active sequences with the tree on must exceed 2x the
// tree-off figure — and the generated token streams must be identical,
// because prefix adoption is bit-exact.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "genserve/generation_server.h"
#include "obs/metrics.h"
#include "serving/request.h"

using namespace turbo;

namespace {

constexpr int kVocab = 500;
constexpr int kBlockTokens = 8;
constexpr int kSystemTokens = 384;  // shared prefix; block-aligned
constexpr int kUserTokens = 8;      // fresh tokens appended each turn
constexpr int kConversations = 24;
constexpr int kTurns = 2;
constexpr int kMaxNew = 6;

model::ModelConfig gen_config() {
  return model::ModelConfig::tiny_causal(/*layers=*/2, /*hidden=*/64,
                                         /*heads=*/4, /*inter=*/128,
                                         /*vocab=*/kVocab);
}

struct TurnStats {
  double mean_active = 0.0;  // mean fused-step batch while busy
  int peak_active = 0;
  size_t steps = 0;
  size_t tokens = 0;
  double wall_s = 0.0;
};

struct RunResult {
  std::vector<TurnStats> turns;
  // Final fed history per conversation (prompt + every generated token of
  // every turn) — the bit-identity witness.
  std::vector<std::vector<int>> histories;
  size_t radix_hits = 0;
  size_t radix_hit_rows = 0;
  size_t radix_evictions = 0;
  size_t prefilled = 0;
  size_t peak_device = 0;
};

RunResult run_trace(const model::ModelConfig& config, bool radix) {
  genserve::GenServerOptions options;
  options.pool.block_tokens = kBlockTokens;
  options.pool.blocks_per_slab = 4;
  // Fixed pool: a small fraction of what all conversations' worst cases
  // would need, so concurrency is pool-bound, not queue-bound.
  options.pool.max_bytes = static_cast<size_t>(192) * kBlockTokens *
                           config.hidden * 2 * sizeof(float);
  options.pool.enable_radix_tree = radix;
  options.scheduler.max_active = 32;
  options.scheduler.optimistic_admission = true;
  genserve::GenerationServer server(config, options, 29);

  RunResult r;
  TurnStats* turn_stats = nullptr;
  size_t active_sum = 0;
  server.set_step_observer([&](const genserve::StepStats& s) {
    if (s.active == 0) return;
    active_sum += static_cast<size_t>(s.active);
    ++turn_stats->steps;
    turn_stats->peak_active = std::max(turn_stats->peak_active, s.active);
    r.peak_device = std::max(r.peak_device, s.kv_device_bytes);
    r.prefilled += static_cast<size_t>(s.prefilled);
  });

  // Per-conversation fed history; turn k's prompt is the whole history so
  // far plus kUserTokens fresh user tokens.
  Rng rng(0xC4A7);
  const std::vector<int> system_prompt = rng.token_ids(kSystemTokens, kVocab);
  std::vector<std::vector<int>> histories(kConversations);
  for (auto& h : histories) {
    h = system_prompt;
    const auto user = rng.token_ids(kUserTokens, kVocab);
    h.insert(h.end(), user.begin(), user.end());
  }

  for (int turn = 0; turn < kTurns; ++turn) {
    r.turns.emplace_back();
    turn_stats = &r.turns.back();
    active_sum = 0;
    for (auto& req : bench::chat_turn_requests(histories, turn, kMaxNew)) {
      server.submit(std::move(req));
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto responses = server.run_to_completion();
    turn_stats->wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    turn_stats->mean_active =
        turn_stats->steps ? static_cast<double>(active_sum) /
                                static_cast<double>(turn_stats->steps)
                          : 0.0;
    for (const auto& resp : responses) {
      turn_stats->tokens += resp.tokens.size();
      auto& h = histories[static_cast<size_t>(resp.request_id % 100)];
      h.insert(h.end(), resp.tokens.begin(), resp.tokens.end());
    }
    if (turn + 1 < kTurns) {
      // Next turn's user message.
      for (auto& h : histories) {
        const auto user = rng.token_ids(kUserTokens, kVocab);
        h.insert(h.end(), user.begin(), user.end());
      }
    }
  }

  // Prefix-cache activity, read back through the metrics registry (the
  // same counters an operator would scrape).
  const auto& reg = *server.metrics();
  const std::string p = server.metric_prefix();
  r.radix_hits = reg.counter_value(p + "radix_hits");
  r.radix_hit_rows = reg.counter_value(p + "radix_hit_rows");
  r.radix_evictions = reg.counter_value(p + "radix_evictions");
  r.histories = std::move(histories);
  return r;
}

}  // namespace

int main() {
  const auto config = gen_config();
  const double kb = 1024.0;

  std::printf("Radix prefix caching — causal LM chat trace: %d conversations"
              " x %d turns,\nshared system prompt %d tokens, +%d user tokens"
              "/turn, max_new %d, fixed pool\n",
              kConversations, kTurns, kSystemTokens, kUserTokens, kMaxNew);
  bench::print_rule('=');

  const RunResult off = run_trace(config, /*radix=*/false);
  const RunResult on = run_trace(config, /*radix=*/true);

  std::printf("%4s | %9s %9s %7s | %9s %9s | %9s %9s\n", "turn", "mean off",
              "mean on", "gain", "peak off", "peak on", "steps off",
              "steps on");
  for (int t = 0; t < kTurns; ++t) {
    const TurnStats& a = off.turns[static_cast<size_t>(t)];
    const TurnStats& b = on.turns[static_cast<size_t>(t)];
    std::printf("%4d | %9.2f %9.2f %6.2fx | %9d %9d | %9zu %9zu\n", t,
                a.mean_active, b.mean_active,
                a.mean_active > 0 ? b.mean_active / a.mean_active : 0.0,
                a.peak_active, b.peak_active, a.steps, b.steps);
  }
  bench::print_rule();
  std::printf("radix on : hits %zu, hit rows %zu, evictions %zu, prefill "
              "steps %zu, peak %.1f KB\n",
              on.radix_hits, on.radix_hit_rows, on.radix_evictions,
              on.prefilled, on.peak_device / kb);
  std::printf("radix off: hits %zu, prefill steps %zu, peak %.1f KB\n",
              off.radix_hits, off.prefilled, off.peak_device / kb);
  std::printf("mean = mean concurrent sequences per fused step; adopted "
              "prefix rows skip their\nprefill steps entirely, and shared "
              "prefix blocks are charged once across holders.\n");

  // Bit-identity: prefix adoption must not change a single token.
  if (off.histories != on.histories) {
    std::printf("!! generated histories diverged between radix on/off — "
                "prefix adoption must be bit-exact\n");
    return 1;
  }
  std::printf("outputs bit-identical across the A/B (%d conversations)\n",
              kConversations);

  // Concurrency gate on the cache-warm turns (turn 0 fills the tree; by
  // turn 1 every prompt's history is donated and should be adopted).
  const double mean_off = off.turns.back().mean_active;
  const double mean_on = on.turns.back().mean_active;
  const double gain = mean_off > 0 ? mean_on / mean_off : 0.0;
  if (std::getenv("TURBO_BENCH_NO_GATE") == nullptr) {
    if (!(gain > 2.0)) {
      std::printf("!! admitted-concurrency gate failed: final-turn mean "
                  "%.2f (on) vs %.2f (off) = %.2fx (need >2x)\n",
                  mean_on, mean_off, gain);
      return 1;
    }
    std::printf("gate passed: final-turn mean concurrency %.2fx (>2x)\n",
                gain);
  } else {
    std::printf("(gate skipped: TURBO_BENCH_NO_GATE set; final-turn mean "
                "concurrency %.2fx)\n",
                gain);
  }
  return 0;
}
